package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/blackboard"
	"repro/internal/trace"
)

func TestTemporalBucketsByStartTime(t *testing.T) {
	m := NewTemporalModule(100)
	evs := []trace.Event{
		{Kind: trace.KindSend, Size: 10, TStart: 5, TEnd: 15},    // bucket 0
		{Kind: trace.KindSend, Size: 20, TStart: 150, TEnd: 160}, // bucket 1
		{Kind: trace.KindSend, Size: 30, TStart: 950, TEnd: 980}, // bucket 9
	}
	for i := range evs {
		m.Add(&evs[i])
	}
	if m.Buckets() != 10 {
		t.Fatalf("buckets = %d", m.Buckets())
	}
	hits := m.Series(trace.KindSend, MetricHits)
	if hits[0] != 1 || hits[1] != 1 || hits[9] != 1 || hits[5] != 0 {
		t.Fatalf("hits = %v", hits)
	}
	bytes := m.Series(trace.KindSend, MetricBytes)
	if bytes[0] != 10 || bytes[1] != 20 || bytes[9] != 30 {
		t.Fatalf("bytes = %v", bytes)
	}
}

func TestTemporalProRataSpread(t *testing.T) {
	m := NewTemporalModule(100)
	// A 250 ns wait spanning buckets 0..2: 50 + 100 + 100.
	ev := trace.Event{Kind: trace.KindWait, TStart: 50, TEnd: 300}
	m.Add(&ev)
	times := m.Series(trace.KindWait, MetricTime)
	want := []float64{50, 100, 100}
	for b, w := range want {
		if times[b] != w {
			t.Fatalf("bucket %d = %v, want %v (all: %v)", b, times[b], w, times)
		}
	}
}

func TestTemporalCommunicationSeries(t *testing.T) {
	m := NewTemporalModule(100)
	evs := []trace.Event{
		{Kind: trace.KindSend, TStart: 0, TEnd: 10},
		{Kind: trace.KindBarrier, TStart: 10, TEnd: 60},
		{Kind: trace.KindInit, TStart: 0, TEnd: 90}, // not communication
	}
	for i := range evs {
		m.Add(&evs[i])
	}
	comm := m.CommunicationTimeSeries()
	if comm[0] != 60 {
		t.Fatalf("comm series = %v", comm)
	}
}

func TestTemporalMerge(t *testing.T) {
	a, b := NewTemporalModule(100), NewTemporalModule(100)
	ev1 := trace.Event{Kind: trace.KindSend, Size: 5, TStart: 0, TEnd: 10}
	ev2 := trace.Event{Kind: trace.KindSend, Size: 7, TStart: 250, TEnd: 260}
	a.Add(&ev1)
	b.Add(&ev2)
	a.Merge(b)
	if a.Buckets() != 3 {
		t.Fatalf("buckets = %d", a.Buckets())
	}
	bytes := a.Series(trace.KindSend, MetricBytes)
	if bytes[0] != 5 || bytes[2] != 7 {
		t.Fatalf("merged bytes = %v", bytes)
	}
}

func TestTemporalDefaultWindow(t *testing.T) {
	m := NewTemporalModule(0)
	if m.Window() != 1e8 {
		t.Fatalf("window = %d", m.Window())
	}
}

func TestPipelineEnableTemporal(t *testing.T) {
	bb := blackboard.New(blackboard.Config{Workers: 2})
	defer bb.Close()
	p, err := NewPipeline(bb, "app", 2)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := p.EnableTemporal(1000)
	if err != nil {
		t.Fatal(err)
	}
	p.PostPack(buildPack(0, 0,
		sendEvent(0, 1, 64, 100, 200),
		sendEvent(0, 1, 64, 2500, 2600),
	))
	bb.Drain()
	if tm.Buckets() != 3 {
		t.Fatalf("buckets = %d", tm.Buckets())
	}
	if hits := tm.Series(trace.KindSend, MetricHits); hits[0] != 1 || hits[2] != 1 {
		t.Fatalf("hits = %v", hits)
	}
}

// Property: pro-rata time spreading conserves total duration.
func TestTemporalTimeConservationProperty(t *testing.T) {
	f := func(start uint16, dur uint16, window uint8) bool {
		w := int64(window%200) + 10
		m := NewTemporalModule(w)
		ev := trace.Event{Kind: trace.KindWait, TStart: int64(start), TEnd: int64(start) + int64(dur)}
		m.Add(&ev)
		var total float64
		for _, v := range m.Series(trace.KindWait, MetricTime) {
			total += v
		}
		return math.Abs(total-float64(dur)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
