package analysis

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/trace"
)

// Partial is a partial profile: the per-leaf (and per-aggregator) unit of
// reduction in the multi-level analysis tree. A leaf analyzer folds its
// slice of an application's event stream into a Partial, ships the
// encoded bytes up the tree, and every interior aggregator merges the
// partials of its children — associative, commutative and
// identity-preserving, so the tree may combine them in any shape or
// order and still reproduce the flat single-blackboard profile exactly.
//
// The wait-state module is the one stateful case: matched pairs are
// settled statistics (plain sums), but unmatched send/recv queues must
// travel with the partial so cross-leaf channels pair at the first
// common ancestor. Flush therefore distinguishes periodic delta flushes
// (settled sums only; pending queues stay behind to keep local pairing
// exact) from the final flush at stream end (queues included).
type Partial struct {
	// AppID is the instrumented application the events belong to.
	AppID uint32

	opts PartialOptions

	// Core modules, always present (the report's mandatory chapters).
	Profiler *ProfilerModule
	Topology *TopologyModule
	Density  *DensityModule

	// Optional modules, present per opts.
	Waits     *WaitStateModule
	Temporal  *TemporalModule
	Callsites *CallsiteModule
	Sizes     *SizesModule

	// Windows is the time-resolved series: one inner per-window Partial
	// per virtual-time window (see WindowedModule). Present when
	// opts.WindowNs > 0; travels with the partial so tree leaves seal
	// windows below the root and replicas carry them through epoch merges.
	Windows *WindowedModule

	// Shed carries the load-shedding ledger folded from audit packs (nil
	// until one arrives). Unlike the modules above it is data-driven, not
	// option-driven: it appears exactly when shedding occurred, so
	// non-shedding runs encode byte-identical partials with or without an
	// admission gate in the path.
	Shed *CompletenessModule
}

// PartialOptions selects which analysis modules a Partial carries; it
// must match across every partial of one application (and the root
// pipeline's enabled modules).
type PartialOptions struct {
	// AppSize is the application's rank count.
	AppSize int
	// WaitState enables the late-sender analysis.
	WaitState bool
	// TemporalWindowNs enables the temporal map with the given bucket
	// width (0 = off).
	TemporalWindowNs int64
	// Callsites enables the per-call-site breakdown.
	Callsites bool
	// Sizes enables the message-size histogram.
	Sizes bool
	// WindowNs enables the time-resolved window series with the given
	// window width in virtual nanoseconds (0 = off).
	WindowNs int64
	// WindowSlideNs is the window slide; NewPartial normalizes it to
	// (0, WindowNs] — any value outside that range (including 0) means
	// tumbling windows, i.e. slide == width. Ignored when WindowNs == 0.
	WindowSlideNs int64
}

// NewPartial creates an empty partial profile. Window options are
// normalized: with WindowNs > 0 the slide snaps into (0, WindowNs]
// (anything outside means tumbling), with WindowNs == 0 the slide is
// zeroed — so equal effective configurations compare equal as opts.
func NewPartial(appID uint32, opts PartialOptions) *Partial {
	if opts.WindowNs > 0 {
		if opts.WindowSlideNs <= 0 || opts.WindowSlideNs > opts.WindowNs {
			opts.WindowSlideNs = opts.WindowNs
		}
	} else {
		opts.WindowNs, opts.WindowSlideNs = 0, 0
	}
	pp := &Partial{
		AppID:    appID,
		opts:     opts,
		Profiler: NewProfilerModule(opts.AppSize),
		Topology: NewTopologyModule(opts.AppSize),
		Density:  NewDensityModule(opts.AppSize),
	}
	if opts.WaitState {
		pp.Waits = NewWaitStateModule(opts.AppSize)
	}
	if opts.TemporalWindowNs > 0 {
		pp.Temporal = NewTemporalModule(opts.TemporalWindowNs)
	}
	if opts.Callsites {
		pp.Callsites = NewCallsiteModule()
	}
	if opts.Sizes {
		pp.Sizes = NewSizesModule()
	}
	if opts.WindowNs > 0 {
		pp.Windows = NewWindowedModule(opts.WindowNs, opts.WindowSlideNs, innerWindowOptions(opts))
	}
	return pp
}

// Options returns the partial's module selection.
func (pp *Partial) Options() PartialOptions { return pp.opts }

// AddEvent folds one decoded event into every enabled module.
func (pp *Partial) AddEvent(ev *trace.Event) {
	pp.Profiler.Add(ev)
	pp.Topology.Add(ev)
	pp.Density.Add(ev)
	if pp.Waits != nil {
		pp.Waits.Add(ev)
	}
	if pp.Temporal != nil {
		pp.Temporal.Add(ev)
	}
	if pp.Callsites != nil {
		pp.Callsites.Add(ev)
	}
	if pp.Sizes != nil {
		pp.Sizes.Add(ev)
	}
	if pp.Windows != nil {
		pp.Windows.Add(ev)
	}
}

// Merge folds another partial of the same application into this one.
// Wait-state pending queues are carried over and re-paired (MergeFull),
// which is what makes the operation associative and commutative.
func (pp *Partial) Merge(o *Partial) error {
	if pp.AppID != o.AppID {
		return fmt.Errorf("analysis: merging partials of different apps (%d vs %d)", pp.AppID, o.AppID)
	}
	if pp.opts != o.opts {
		return fmt.Errorf("analysis: merging partials with different module selections (%+v vs %+v)", pp.opts, o.opts)
	}
	pp.Profiler.Merge(o.Profiler)
	pp.Topology.Merge(o.Topology)
	pp.Density.Merge(o.Density)
	if o.Shed != nil {
		if pp.Shed == nil {
			pp.Shed = NewCompletenessModule()
		}
		pp.Shed.Merge(o.Shed)
	}
	if pp.Waits != nil {
		pp.Waits.MergeFull(o.Waits)
	}
	if pp.Temporal != nil {
		pp.Temporal.Merge(o.Temporal)
	}
	if pp.Callsites != nil {
		pp.Callsites.Merge(o.Callsites)
	}
	if pp.Sizes != nil {
		pp.Sizes.Merge(o.Sizes)
	}
	if pp.Windows != nil {
		if err := pp.Windows.Merge(o.Windows); err != nil {
			return err
		}
	}
	return nil
}

// --- wire format ---
//
// Little-endian, sequential sections behind a 4-byte magic. Every map is
// encoded sparse and key-sorted, so two partials with equal contents
// produce identical bytes regardless of the merge order that built them
// — the canonical form the property tests compare.

var partialMagic = [4]byte{'V', 'P', 'P', '1'}

// maxDecodedAppSize caps the app size a decoded partial may claim. The
// bound matters: NewPartial allocates the dense 24*N^2-byte topology
// matrix up front, so an unchecked wire header is a one-frame memory
// bomb (N = 1<<24 maps ~6 PB). 1<<12 covers the paper's largest
// application partition (2560 procs) with a ~400 MB worst case.
const maxDecodedAppSize = 1 << 12

// maxDecodedTemporalBuckets caps both the bucket count a decoded
// temporal map may claim and the dense Stat cells it may materialize
// across kinds. The bucket count sizes read-time series slices and the
// per-kind arrays are dense up to the highest index an entry names, so
// without the cap a sub-kilobyte payload forces multi-gigabyte
// allocations. 1<<20 buckets is a week of runtime at the default 10 ms
// temporal window — far past any real run.
const maxDecodedTemporalBuckets = 1 << 20

const (
	flagWait uint32 = 1 << iota
	flagTemporal
	flagCallsites
	flagSizes
	flagPendings
	flagShed
	flagWindowed
)

// AppendCanonical appends the partial's full canonical encoding
// (pending wait-state queues included) to buf without mutating any
// module — the comparison form.
func (pp *Partial) AppendCanonical(buf []byte) []byte {
	return pp.encode(buf, true, false)
}

// Flush appends the partial's encoding to buf and clears what was
// encoded. A non-final flush carries only settled statistics and leaves
// the wait-state pending queues in place (so later local events still
// pair exactly); the final flush at stream end carries and clears the
// queues too.
func (pp *Partial) Flush(buf []byte, final bool) []byte {
	return pp.encode(buf, final, true)
}

func (pp *Partial) encode(buf []byte, pendings, reset bool) []byte {
	w := pwriter{buf: buf}
	w.buf = append(w.buf, partialMagic[:]...)
	w.u32(pp.AppID)
	w.u32(uint32(pp.opts.AppSize))
	var flags uint32
	if pp.opts.WaitState {
		flags |= flagWait
	}
	if pp.opts.TemporalWindowNs > 0 {
		flags |= flagTemporal
	}
	if pp.opts.Callsites {
		flags |= flagCallsites
	}
	if pp.opts.Sizes {
		flags |= flagSizes
	}
	if pendings {
		flags |= flagPendings
	}
	shed := pp.Shed != nil && !pp.Shed.Empty()
	if shed {
		flags |= flagShed
	}
	if pp.Windows != nil {
		flags |= flagWindowed
	}
	w.u32(flags)
	w.i64(pp.opts.TemporalWindowNs)
	if pp.Windows != nil {
		// Window geometry rides in the header, not the trailing section:
		// DecodePartial must construct the module (from options) before
		// any section is read.
		w.i64(pp.opts.WindowNs)
		w.i64(pp.opts.WindowSlideNs)
	}

	pp.encodeProfiler(&w, reset)
	pp.encodeTopology(&w, reset)
	pp.encodeDensity(&w, reset)
	if pp.Waits != nil {
		pp.encodeWaits(&w, pendings, reset)
	}
	if pp.Temporal != nil {
		pp.encodeTemporal(&w, reset)
	}
	if pp.Callsites != nil {
		pp.encodeCallsites(&w, reset)
	}
	if pp.Sizes != nil {
		pp.encodeSizes(&w, reset)
	}
	if shed {
		pp.encodeShed(&w, reset)
	}
	if pp.Windows != nil {
		pp.encodeWindows(&w, pendings, reset)
	}
	return w.buf
}

func (pp *Partial) encodeWindows(w *pwriter, pendings, reset bool) {
	m := pp.Windows
	m.mu.Lock()
	defer m.mu.Unlock()
	// Only windows with content travel: a window drained by an earlier
	// delta flush stays in the map but must not change the bytes (content-
	// equal series encode identically whatever their flush history).
	idxs := make([]int64, 0, len(m.wins))
	for i, wp := range m.wins {
		if windowHasContent(wp, pendings) {
			idxs = append(idxs, i)
		}
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	w.u32(uint32(len(idxs)))
	for _, i := range idxs {
		w.i64(i)
		// Length-prefixed nested encoding: reserve the u32, encode the
		// inner partial in place, backfill.
		lenAt := len(w.buf)
		w.u32(0)
		w.buf = m.wins[i].encode(w.buf, pendings, reset)
		binary.LittleEndian.PutUint32(w.buf[lenAt:], uint32(len(w.buf)-lenAt-4))
	}
}

// windowHasContent reports whether an inner window partial would
// contribute anything to an encoding: folded events, or (on a
// pendings-carrying encode) unmatched wait queues left behind by an
// earlier delta flush.
func windowHasContent(wp *Partial, pendings bool) bool {
	wp.Profiler.mu.Lock()
	events := wp.Profiler.events
	wp.Profiler.mu.Unlock()
	if events > 0 {
		return true
	}
	if !pendings || wp.Waits == nil {
		return false
	}
	ws := wp.Waits
	ws.mu.Lock()
	defer ws.mu.Unlock()
	for _, q := range ws.sends {
		if len(q) > 0 {
			return true
		}
	}
	for _, q := range ws.recvs {
		if len(q) > 0 {
			return true
		}
	}
	return false
}

func (pp *Partial) decodeWindows(r *preader) error {
	m := pp.Windows
	n := int(r.u32())
	if r.err != nil {
		return r.err
	}
	if n < 0 || n > maxDecodedWindows {
		return fmt.Errorf("analysis: partial window count %d outside [0, %d]", n, maxDecodedWindows)
	}
	if err := r.fits(n, 8+4); err != nil {
		return err
	}
	prev := int64(-1)
	for i := 0; i < n; i++ {
		idx := r.i64()
		bl := int(r.u32())
		if r.err != nil {
			return r.err
		}
		if idx < 0 || idx <= prev {
			return fmt.Errorf("analysis: partial window index %d out of order after %d", idx, prev)
		}
		prev = idx
		if bl < 0 || bl > len(r.buf)-r.off {
			r.fail()
			return r.err
		}
		wp, err := DecodePartial(r.buf[r.off : r.off+bl])
		if err != nil {
			return fmt.Errorf("analysis: window %d: %w", idx, err)
		}
		r.off += bl
		// A nested windowed partial (or any other module drift) shows up
		// as an options mismatch against the derived inner selection.
		if wp.AppID != 0 || wp.opts != m.inner {
			return fmt.Errorf("analysis: window %d module selection %+v does not match series %+v",
				idx, wp.opts, m.inner)
		}
		if wp.Waits != nil {
			wp.Waits.lazy = true
		}
		m.wins[idx] = wp
	}
	return r.err
}

// AddAudit folds audit-pack entries (a recorder's shed ledger) into the
// partial, creating its completeness module on first use.
func (pp *Partial) AddAudit(entries []trace.AuditEntry) {
	if len(entries) == 0 {
		return
	}
	if pp.Shed == nil {
		pp.Shed = NewCompletenessModule()
	}
	pp.Shed.AddAudit(entries)
}

func (pp *Partial) encodeShed(w *pwriter, reset bool) {
	m := pp.Shed
	m.mu.Lock()
	defer m.mu.Unlock()
	kinds := make([]trace.Kind, 0, len(m.per))
	for k := range m.per {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	w.u32(uint32(len(kinds)))
	for _, k := range kinds {
		st := m.per[k]
		w.u32(uint32(k))
		w.i64(st.Shed)
		w.i64(st.Kept)
	}
	if reset {
		m.per = map[trace.Kind]*ShedStat{}
	}
}

func (pp *Partial) decodeShed(r *preader) error {
	m := pp.Shed
	n := int(r.u32())
	if err := r.fits(n, 4+16); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		k := trace.Kind(r.u32())
		st := ShedStat{Shed: r.i64(), Kept: r.i64()}
		if st.Shed < 0 || st.Kept < 0 {
			return fmt.Errorf("analysis: negative shed ledger counts for %v", k)
		}
		m.per[k] = &st
	}
	return r.err
}

func sortedKinds(m map[trace.Kind][]Stat) []trace.Kind {
	out := make([]trace.Kind, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (pp *Partial) encodeProfiler(w *pwriter, reset bool) {
	m := pp.Profiler
	m.mu.Lock()
	defer m.mu.Unlock()
	w.i64(m.events)
	kinds := make([]trace.Kind, 0, len(m.total))
	for k := range m.total {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	w.u32(uint32(len(kinds)))
	for _, k := range kinds {
		st := m.total[k]
		w.u32(uint32(k))
		w.stat(*st)
	}
	if reset {
		m.events = 0
		m.total = make(map[trace.Kind]*Stat)
	}
}

func (pp *Partial) encodeTopology(w *pwriter, reset bool) {
	m := pp.Topology
	m.mu.Lock()
	defer m.mu.Unlock()
	mat := m.mat
	n := 0
	for _, h := range mat.Hits {
		if h != 0 {
			n++
		}
	}
	w.u32(uint32(n))
	for i, h := range mat.Hits {
		if h == 0 {
			continue
		}
		w.u32(uint32(i))
		w.stat(Stat{Hits: h, Bytes: mat.Bytes[i], TimeNs: mat.TimeNs[i]})
	}
	if reset {
		m.mat = NewMatrix(mat.N)
	}
}

func (pp *Partial) encodeDensity(w *pwriter, reset bool) {
	m := pp.Density
	m.mu.Lock()
	defer m.mu.Unlock()
	kinds := sortedKinds(m.perKind)
	w.u32(uint32(len(kinds)))
	for _, k := range kinds {
		per := m.perKind[k]
		n := 0
		for r := range per {
			if per[r].Hits != 0 {
				n++
			}
		}
		w.u32(uint32(k))
		w.u32(uint32(n))
		for r := range per {
			if per[r].Hits == 0 {
				continue
			}
			w.u32(uint32(r))
			w.stat(per[r])
		}
	}
	if reset {
		m.perKind = make(map[trace.Kind][]Stat)
	}
}

func (pp *Partial) encodeWaits(w *pwriter, pendings, reset bool) {
	m := pp.Waits
	m.mu.Lock()
	defer m.mu.Unlock()
	// Settle first: pairs realized here ride in the settled sums, and only
	// the truly unmatched remainder travels as pending queues. Lazy
	// (per-window) modules skip this and ship whole queues instead.
	if !m.lazy {
		m.settleLocked()
	}
	w.i64(m.pairs)
	n := 0
	for _, v := range m.lateHits {
		if v != 0 {
			n++
		}
	}
	w.u32(uint32(n))
	for r, v := range m.lateHits {
		if v == 0 {
			continue
		}
		w.u32(uint32(r))
		w.i64(m.lateNs[r])
		w.i64(v)
	}
	if reset {
		m.pairs = 0
		for r := range m.lateNs {
			m.lateNs[r], m.lateHits[r] = 0, 0
		}
	}
	if !pendings {
		w.u32(0)
		w.u32(0)
		return
	}
	// Pairing can leave empty queues behind in the maps; skipping them
	// keeps the encoding canonical (content-equal modules encode
	// identically whatever their pairing history).
	sendKeys := make([]chanKey, 0, len(m.sends))
	for k, q := range m.sends {
		if len(q) > 0 {
			sendKeys = append(sendKeys, k)
		}
	}
	sortChanKeys(sendKeys)
	w.u32(uint32(len(sendKeys)))
	for _, k := range sendKeys {
		w.chanKey(k)
		q := m.sends[k]
		w.u32(uint32(len(q)))
		for _, t := range q {
			w.i64(t)
		}
	}
	recvKeys := make([]chanKey, 0, len(m.recvs))
	for k, q := range m.recvs {
		if len(q) > 0 {
			recvKeys = append(recvKeys, k)
		}
	}
	sortChanKeys(recvKeys)
	w.u32(uint32(len(recvKeys)))
	for _, k := range recvKeys {
		w.chanKey(k)
		q := m.recvs[k]
		w.u32(uint32(len(q)))
		for _, rv := range q {
			w.u32(uint32(rv.rank))
			w.i64(rv.tStart)
			w.i64(rv.tEnd)
		}
	}
	if reset {
		m.sends = make(map[chanKey][]int64)
		m.recvs = make(map[chanKey][]recvEvt)
	}
}

func (pp *Partial) encodeTemporal(w *pwriter, reset bool) {
	m := pp.Temporal
	m.mu.Lock()
	defer m.mu.Unlock()
	w.u32(uint32(m.buckets))
	kinds := sortedKinds(m.perKind)
	w.u32(uint32(len(kinds)))
	for _, k := range kinds {
		per := m.perKind[k]
		n := 0
		for b := range per {
			if per[b] != (Stat{}) {
				n++
			}
		}
		w.u32(uint32(k))
		w.u32(uint32(n))
		for b := range per {
			if per[b] == (Stat{}) {
				continue
			}
			w.u32(uint32(b))
			w.stat(per[b])
		}
	}
	if reset {
		m.perKind = make(map[trace.Kind][]Stat)
		m.buckets = 0
	}
}

func (pp *Partial) encodeCallsites(w *pwriter, reset bool) {
	m := pp.Callsites
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([]callsiteKey, 0, len(m.per))
	for k := range m.per {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].ctx != keys[j].ctx {
			return keys[i].ctx < keys[j].ctx
		}
		return keys[i].kind < keys[j].kind
	})
	w.u32(uint32(len(keys)))
	for _, k := range keys {
		w.u32(k.ctx)
		w.u32(uint32(k.kind))
		w.stat(*m.per[k])
	}
	if reset {
		m.per = make(map[callsiteKey]*Stat)
	}
}

func (pp *Partial) encodeSizes(w *pwriter, reset bool) {
	m := pp.Sizes
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for b := 0; b < SizeBuckets; b++ {
		if m.hits[b] != 0 {
			n++
		}
	}
	w.u32(uint32(n))
	for b := 0; b < SizeBuckets; b++ {
		if m.hits[b] == 0 {
			continue
		}
		w.u32(uint32(b))
		w.i64(m.hits[b])
		w.i64(m.bytes[b])
	}
	if reset {
		m.hits = [SizeBuckets]int64{}
		m.bytes = [SizeBuckets]int64{}
	}
}

func sortChanKeys(keys []chanKey) {
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.src != b.src {
			return a.src < b.src
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		if a.tag != b.tag {
			return a.tag < b.tag
		}
		return a.comm < b.comm
	})
}

// DecodePartial decodes an encoded partial profile. Malformed input
// returns an error, never panics.
func DecodePartial(buf []byte) (*Partial, error) {
	r := preader{buf: buf}
	var magic [4]byte
	r.bytes(magic[:])
	if r.err == nil && magic != partialMagic {
		return nil, fmt.Errorf("analysis: bad partial magic %q", magic[:])
	}
	appID := r.u32()
	appSize := int(r.u32())
	flags := r.u32()
	window := r.i64()
	if r.err != nil {
		return nil, r.err
	}
	if appSize < 0 || appSize > maxDecodedAppSize {
		return nil, fmt.Errorf("analysis: implausible partial app size %d", appSize)
	}
	opts := PartialOptions{
		AppSize:   appSize,
		WaitState: flags&flagWait != 0,
		Callsites: flags&flagCallsites != 0,
		Sizes:     flags&flagSizes != 0,
	}
	if flags&flagTemporal != 0 {
		if window <= 0 {
			return nil, fmt.Errorf("analysis: partial temporal flag with window %d", window)
		}
		opts.TemporalWindowNs = window
	}
	if flags&flagWindowed != 0 {
		opts.WindowNs = r.i64()
		opts.WindowSlideNs = r.i64()
		if r.err != nil {
			return nil, r.err
		}
		// NewPartial would silently normalize these; on the wire an
		// out-of-range geometry is hostile input and fails loudly.
		if opts.WindowNs <= 0 {
			return nil, fmt.Errorf("analysis: partial windowed flag with width %d", opts.WindowNs)
		}
		if opts.WindowSlideNs <= 0 || opts.WindowSlideNs > opts.WindowNs {
			return nil, fmt.Errorf("analysis: partial window slide %d outside (0, %d]",
				opts.WindowSlideNs, opts.WindowNs)
		}
	}
	pp := NewPartial(appID, opts)
	if err := pp.decodeProfiler(&r); err != nil {
		return nil, err
	}
	if err := pp.decodeTopology(&r); err != nil {
		return nil, err
	}
	if err := pp.decodeDensity(&r); err != nil {
		return nil, err
	}
	if pp.Waits != nil {
		if err := pp.decodeWaits(&r); err != nil {
			return nil, err
		}
	}
	if pp.Temporal != nil {
		if err := pp.decodeTemporal(&r); err != nil {
			return nil, err
		}
	}
	if pp.Callsites != nil {
		if err := pp.decodeCallsites(&r); err != nil {
			return nil, err
		}
	}
	if pp.Sizes != nil {
		if err := pp.decodeSizes(&r); err != nil {
			return nil, err
		}
	}
	if flags&flagShed != 0 {
		pp.Shed = NewCompletenessModule()
		if err := pp.decodeShed(&r); err != nil {
			return nil, err
		}
	}
	if pp.Windows != nil {
		if err := pp.decodeWindows(&r); err != nil {
			return nil, err
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.buf) {
		return nil, fmt.Errorf("analysis: %d trailing bytes after partial", len(r.buf)-r.off)
	}
	return pp, nil
}

func (pp *Partial) decodeProfiler(r *preader) error {
	m := pp.Profiler
	m.events = r.i64()
	n := int(r.u32())
	if err := r.fits(n, 4+24); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		k := trace.Kind(r.u32())
		st := r.stat()
		m.total[k] = &st
	}
	return r.err
}

func (pp *Partial) decodeTopology(r *preader) error {
	m := pp.Topology
	n := int(r.u32())
	if err := r.fits(n, 4+24); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	m.mat.ensure()
	cells := len(m.mat.Hits)
	for i := 0; i < n; i++ {
		idx := int(r.u32())
		st := r.stat()
		if r.err != nil {
			return r.err
		}
		if idx >= cells {
			return fmt.Errorf("analysis: partial topology cell %d outside %dx%d", idx, m.mat.N, m.mat.N)
		}
		m.mat.Hits[idx] = st.Hits
		m.mat.Bytes[idx] = st.Bytes
		m.mat.TimeNs[idx] = st.TimeNs
	}
	return nil
}

func (pp *Partial) decodeDensity(r *preader) error {
	m := pp.Density
	nk := int(r.u32())
	if err := r.fits(nk, 8); err != nil {
		return err
	}
	for i := 0; i < nk; i++ {
		k := trace.Kind(r.u32())
		n := int(r.u32())
		if err := r.fits(n, 4+24); err != nil {
			return err
		}
		per := make([]Stat, m.size)
		for j := 0; j < n; j++ {
			rank := int(r.u32())
			st := r.stat()
			if r.err != nil {
				return r.err
			}
			if rank >= m.size {
				return fmt.Errorf("analysis: partial density rank %d outside app of %d", rank, m.size)
			}
			per[rank] = st
		}
		m.perKind[k] = per
	}
	return nil
}

func (pp *Partial) decodeWaits(r *preader) error {
	m := pp.Waits
	m.pairs = r.i64()
	n := int(r.u32())
	if err := r.fits(n, 4+16); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		rank := int(r.u32())
		lateNs := r.i64()
		lateHits := r.i64()
		if r.err != nil {
			return r.err
		}
		if rank >= m.size {
			return fmt.Errorf("analysis: partial wait rank %d outside app of %d", rank, m.size)
		}
		m.lateNs[rank] = lateNs
		m.lateHits[rank] = lateHits
	}
	nq := int(r.u32())
	if err := r.fits(nq, 16+4); err != nil {
		return err
	}
	for i := 0; i < nq; i++ {
		key := r.chanKey()
		ql := int(r.u32())
		if err := r.fits(ql, 8); err != nil {
			return err
		}
		q := make([]int64, ql)
		for j := range q {
			q[j] = r.i64()
		}
		if r.err != nil {
			return r.err
		}
		m.sends[key] = q
	}
	nq = int(r.u32())
	if err := r.fits(nq, 16+4); err != nil {
		return err
	}
	for i := 0; i < nq; i++ {
		key := r.chanKey()
		ql := int(r.u32())
		if err := r.fits(ql, 4+16); err != nil {
			return err
		}
		q := make([]recvEvt, ql)
		for j := range q {
			q[j] = recvEvt{rank: int32(r.u32()), tStart: r.i64(), tEnd: r.i64()}
		}
		if r.err != nil {
			return r.err
		}
		m.recvs[key] = q
	}
	return r.err
}

func (pp *Partial) decodeTemporal(r *preader) error {
	m := pp.Temporal
	m.buckets = int(r.u32())
	if m.buckets < 0 || m.buckets > maxDecodedTemporalBuckets {
		return fmt.Errorf("analysis: implausible partial temporal bucket count %d", m.buckets)
	}
	nk := int(r.u32())
	if err := r.fits(nk, 8); err != nil {
		return err
	}
	cells := 0
	for i := 0; i < nk; i++ {
		k := trace.Kind(r.u32())
		n := int(r.u32())
		if err := r.fits(n, 4+24); err != nil {
			return err
		}
		// First pass: validate entries and find the highest bucket index so
		// the dense slice is allocated exactly once. Growing it inside the
		// fill loop would let a small payload with ascending indices force
		// repeated near-gigabyte reallocations.
		mark := r.off
		maxB := -1
		for j := 0; j < n; j++ {
			b := int(r.u32())
			r.stat()
			if r.err != nil {
				return r.err
			}
			if b >= m.buckets {
				return fmt.Errorf("analysis: partial temporal bucket %d outside %d", b, m.buckets)
			}
			if b > maxB {
				maxB = b
			}
		}
		cells += maxB + 1
		if cells > maxDecodedTemporalBuckets {
			return fmt.Errorf("analysis: partial temporal map claims %d cells (cap %d)", cells, maxDecodedTemporalBuckets)
		}
		var per []Stat
		if maxB >= 0 {
			per = make([]Stat, maxB+1)
		}
		r.off = mark
		for j := 0; j < n; j++ {
			b := int(r.u32())
			per[b] = r.stat()
		}
		m.perKind[k] = per
	}
	return nil
}

func (pp *Partial) decodeCallsites(r *preader) error {
	m := pp.Callsites
	n := int(r.u32())
	if err := r.fits(n, 8+24); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		key := callsiteKey{ctx: r.u32(), kind: trace.Kind(r.u32())}
		st := r.stat()
		if r.err != nil {
			return r.err
		}
		m.per[key] = &st
	}
	return nil
}

func (pp *Partial) decodeSizes(r *preader) error {
	m := pp.Sizes
	n := int(r.u32())
	if err := r.fits(n, 4+16); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		b := int(r.u32())
		hits := r.i64()
		bytes := r.i64()
		if r.err != nil {
			return r.err
		}
		if b >= SizeBuckets {
			return fmt.Errorf("analysis: partial size bucket %d outside %d", b, SizeBuckets)
		}
		m.hits[b] = hits
		m.bytes[b] = bytes
	}
	return nil
}

// --- primitive encoding helpers ---

type pwriter struct{ buf []byte }

func (w *pwriter) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *pwriter) i64(v int64)  { w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(v)) }
func (w *pwriter) stat(s Stat)  { w.i64(s.Hits); w.i64(s.Bytes); w.i64(s.TimeNs) }
func (w *pwriter) chanKey(k chanKey) {
	w.u32(uint32(k.src))
	w.u32(uint32(k.dst))
	w.u32(uint32(k.tag))
	w.u32(k.comm)
}

type preader struct {
	buf []byte
	off int
	err error
}

func (r *preader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("analysis: truncated partial at byte %d of %d", r.off, len(r.buf))
	}
}

// fits guards count-prefixed sections: n items of at least min bytes each
// must fit in the remaining buffer, so a corrupt count can't drive a huge
// allocation or a long spin.
func (r *preader) fits(n, min int) error {
	if r.err != nil {
		return r.err
	}
	if n < 0 || n*min > len(r.buf)-r.off {
		r.fail()
	}
	return r.err
}

func (r *preader) bytes(dst []byte) {
	if r.err != nil {
		return
	}
	if r.off+len(dst) > len(r.buf) {
		r.fail()
		return
	}
	copy(dst, r.buf[r.off:])
	r.off += len(dst)
}

func (r *preader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *preader) i64() int64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return int64(v)
}

func (r *preader) stat() Stat {
	return Stat{Hits: r.i64(), Bytes: r.i64(), TimeNs: r.i64()}
}

func (r *preader) chanKey() chanKey {
	return chanKey{src: int32(r.u32()), dst: int32(r.u32()), tag: int32(r.u32()), comm: r.u32()}
}
