package analysis

import (
	"bytes"
	"testing"

	"repro/internal/blackboard"
	"repro/internal/trace"
)

func TestExportModuleFilterAndRoundTrip(t *testing.T) {
	m := NewExportModule(0, func(e *trace.Event) bool { return e.Kind == trace.KindSend })
	for i := 0; i < 100; i++ {
		k := trace.KindSend
		if i%2 == 1 {
			k = trace.KindBarrier
		}
		m.Add(&trace.Event{Kind: k, Rank: int32(i), Size: int64(i)})
	}
	if m.Exported() != 50 || m.Dropped() != 50 {
		t.Fatalf("exported=%d dropped=%d", m.Exported(), m.Dropped())
	}
	var buf bytes.Buffer
	n, err := m.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) || n == 0 {
		t.Fatalf("n=%d len=%d", n, buf.Len())
	}
	var got []trace.Event
	if err := ReadExported(buf.Bytes(), func(e *trace.Event) { got = append(got, *e) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("replayed %d events", len(got))
	}
	for _, e := range got {
		if e.Kind != trace.KindSend || e.Rank%2 != 0 {
			t.Fatalf("unexpected event in export: %+v", e)
		}
	}
	// After WriteTo the module keeps working.
	m.Add(&trace.Event{Kind: trace.KindSend})
	var buf2 bytes.Buffer
	if _, err := m.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	var more int
	if err := ReadExported(buf2.Bytes(), func(*trace.Event) { more++ }); err != nil {
		t.Fatal(err)
	}
	if more != 1 {
		t.Fatalf("second export = %d events", more)
	}
}

func TestExportSpansMultipleChunks(t *testing.T) {
	m := NewExportModule(7, nil)
	const n = 5000 // > one 64 KB chunk of 48-byte records
	for i := 0; i < n; i++ {
		m.Add(&trace.Event{Kind: trace.KindRecv, Rank: int32(i)})
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := ReadExported(buf.Bytes(), func(*trace.Event) { count++ }); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("replayed %d of %d", count, n)
	}
}

func TestReadExportedRejectsGarbage(t *testing.T) {
	if err := ReadExported([]byte{1, 2, 3, 4, 5}, func(*trace.Event) {}); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestPipelineEnableExport(t *testing.T) {
	bb := blackboard.New(blackboard.Config{Workers: 2})
	defer bb.Close()
	p, err := NewPipeline(bb, "app", 4)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := p.EnableExport("sends", func(e *trace.Event) bool { return e.Kind.IsOutgoingP2P() })
	if err != nil {
		t.Fatal(err)
	}
	p.PostPack(buildPack(0, 0,
		sendEvent(0, 1, 10, 0, 1),
		trace.Event{Kind: trace.KindBarrier, Rank: 0},
		sendEvent(0, 2, 20, 1, 2),
	))
	bb.Drain()
	if exp.Exported() != 2 || exp.Dropped() != 1 {
		t.Fatalf("exported=%d dropped=%d", exp.Exported(), exp.Dropped())
	}
	// The profiler still saw everything (exporter is additive).
	if p.Profiler.Events() != 3 {
		t.Fatalf("profiler events = %d", p.Profiler.Events())
	}
}
