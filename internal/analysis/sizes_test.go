package analysis

import (
	"testing"
	"testing/quick"

	"repro/internal/blackboard"
	"repro/internal/trace"
)

func TestSizesBucketing(t *testing.T) {
	m := NewSizesModule()
	for _, size := range []int64{0, 1, 2, 3, 4, 1000, 1024, 1<<20 - 1, 1 << 20} {
		m.Add(&trace.Event{Kind: trace.KindSend, Size: size})
	}
	// Incoming p2p and collectives must not count.
	m.Add(&trace.Event{Kind: trace.KindRecv, Size: 64})
	m.Add(&trace.Event{Kind: trace.KindAllreduce, Size: 64})

	hits, bytes := m.Totals()
	if hits != 9 {
		t.Fatalf("hits = %d", hits)
	}
	var want int64
	for _, s := range []int64{0, 1, 2, 3, 4, 1000, 1024, 1<<20 - 1, 1 << 20} {
		want += s
	}
	if bytes != want {
		t.Fatalf("bytes = %d, want %d", bytes, want)
	}
	hist := m.Histogram()
	// Buckets: [0,2): {0,1}; [2,4): {2,3}; [4,8): {4}; [512,1024): {1000};
	// [1024,2048): {1024}; [2^19,2^20): {2^20-1}; [2^20,2^21): {2^20}.
	if len(hist) != 7 {
		t.Fatalf("buckets = %+v", hist)
	}
	if hist[0].Hits != 2 || hist[0].Lo != 0 || hist[0].Hi != 2 {
		t.Fatalf("bucket0 = %+v", hist[0])
	}
	if hist[3].Lo != 512 || hist[3].Hits != 1 {
		t.Fatalf("bucket3 = %+v", hist[3])
	}
}

func TestSizesMedian(t *testing.T) {
	m := NewSizesModule()
	for i := 0; i < 10; i++ {
		m.Add(&trace.Event{Kind: trace.KindIsend, Size: 100}) // bucket [64,128)
	}
	m.Add(&trace.Event{Kind: trace.KindIsend, Size: 1 << 20})
	med := m.MedianBucket()
	if med.Lo != 64 || med.Hi != 128 {
		t.Fatalf("median = %+v", med)
	}
	if z := NewSizesModule().MedianBucket(); z.Hits != 0 {
		t.Fatalf("empty median = %+v", z)
	}
}

func TestSizesMerge(t *testing.T) {
	a, b := NewSizesModule(), NewSizesModule()
	a.Add(&trace.Event{Kind: trace.KindSend, Size: 128})
	b.Add(&trace.Event{Kind: trace.KindSend, Size: 128})
	b.Add(&trace.Event{Kind: trace.KindSend, Size: 4096})
	a.Merge(b)
	hits, bytes := a.Totals()
	if hits != 3 || bytes != 128+128+4096 {
		t.Fatalf("merged = %d/%d", hits, bytes)
	}
}

func TestPipelineEnableSizes(t *testing.T) {
	bb := blackboard.New(blackboard.Config{Workers: 2})
	defer bb.Close()
	p, err := NewPipeline(bb, "app", 2)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := p.EnableSizes()
	if err != nil {
		t.Fatal(err)
	}
	p.PostPack(buildPack(0, 0, sendEvent(0, 1, 2048, 0, 1), sendEvent(0, 1, 2048, 1, 2)))
	bb.Drain()
	hits, bytes := sm.Totals()
	if hits != 2 || bytes != 4096 {
		t.Fatalf("totals = %d/%d", hits, bytes)
	}
}

// Property: every added outgoing p2p event lands in exactly one bucket
// whose bounds contain its size, and totals are conserved.
func TestSizesConservationProperty(t *testing.T) {
	f := func(sizes []uint32) bool {
		m := NewSizesModule()
		var wantBytes int64
		for _, s := range sizes {
			sz := int64(s % (1 << 26))
			m.Add(&trace.Event{Kind: trace.KindSend, Size: sz})
			wantBytes += sz
		}
		hits, bytes := m.Totals()
		if hits != int64(len(sizes)) || bytes != wantBytes {
			return false
		}
		for _, b := range m.Histogram() {
			if b.Hits == 0 || b.Lo >= b.Hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
