package analysis

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/trace"
)

// fusedWorkload builds a deterministic mixed-kind event stream for one
// rank — enough variety to exercise every default module.
func fusedWorkload(rank int32, n int) []trace.Event {
	rng := rand.New(rand.NewSource(int64(rank)*7919 + 17))
	evs := make([]trace.Event, 0, n)
	t := int64(rank)
	for i := 0; i < n; i++ {
		t += int64(rng.Intn(50)) + 1
		ev := trace.Event{Rank: rank, Peer: (rank + 1) % 4, Tag: int32(i % 3),
			Ctx: uint32(i % 5), TStart: t, TEnd: t + int64(rng.Intn(30)) + 1}
		switch i % 4 {
		case 0:
			ev.Kind, ev.Size = trace.KindSend, int64(rng.Intn(4096))
		case 1:
			ev.Kind, ev.Size = trace.KindRecv, int64(rng.Intn(4096))
		case 2:
			ev.Kind, ev.Peer = trace.KindBarrier, -1
		default:
			ev.Kind, ev.Size = trace.KindIsend, int64(rng.Intn(512))
		}
		t = ev.TEnd
		evs = append(evs, ev)
	}
	return evs
}

// packStreamV3 encodes one rank's events as an ordered v3 pack sequence.
func packStreamV3(appID uint32, rank int32, evs []trace.Event) [][]byte {
	b := trace.NewPackBuilderV3(appID, rank, 48, 1<<11)
	var packs [][]byte
	for i := range evs {
		if b.Add(&evs[i]) {
			packs = append(packs, b.Take())
		}
	}
	if last := b.Take(); last != nil {
		packs = append(packs, last)
	}
	return packs
}

// TestFusedIngestMatchesBoardPath runs the same workload through the v3
// fused path and the v2 board path and requires identical module results —
// the fused-dispatch invariant the golden fingerprints rely on.
func TestFusedIngestMatchesBoardPath(t *testing.T) {
	const ranks, perRank = 4, 300
	run := func(t *testing.T, fused bool) *Pipeline {
		bb := newBoard(t)
		d, err := NewDispatcher(bb)
		if err != nil {
			t.Fatal(err)
		}
		p, err := d.AddApp(7, "app", ranks)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.EnableTemporal(100); err != nil {
			t.Fatal(err)
		}
		if _, err := p.EnableCallsites(); err != nil {
			t.Fatal(err)
		}
		if _, err := p.EnableSizes(); err != nil {
			t.Fatal(err)
		}
		fi := NewFusedIngest(d)
		for r := int32(0); r < ranks; r++ {
			evs := fusedWorkload(r, perRank)
			if fused {
				for _, pk := range packStreamV3(7, r, evs) {
					consumed, err := fi.Absorb(int(r), pk)
					if err != nil {
						t.Fatal(err)
					}
					if !consumed {
						t.Fatal("v3 pack not consumed by fused path")
					}
				}
			} else {
				b := trace.NewPackBuilderV2(7, r, 48, 1<<11)
				for i := range evs {
					if b.Add(&evs[i]) {
						d.PostRaw(b.Take())
					}
				}
				if last := b.Take(); last != nil {
					d.PostRaw(last)
				}
			}
		}
		bb.Drain()
		if fused {
			if fi.FusedEvents() != ranks*perRank {
				t.Fatalf("fused events = %d, want %d", fi.FusedEvents(), ranks*perRank)
			}
			if fi.FusedPacks() == 0 {
				t.Fatal("no packs took the fused path")
			}
		}
		return p
	}
	pf := run(t, true)
	pb := run(t, false)

	if pf.Profiler.Events() != pb.Profiler.Events() {
		t.Fatalf("events: fused=%d board=%d", pf.Profiler.Events(), pb.Profiler.Events())
	}
	for _, k := range []trace.Kind{trace.KindSend, trace.KindRecv, trace.KindIsend, trace.KindBarrier} {
		if sf, sb := pf.Profiler.Stat(k), pb.Profiler.Stat(k); sf != sb {
			t.Fatalf("kind %v: fused=%+v board=%+v", k, sf, sb)
		}
	}
	mf, mb := pf.Topology.Matrix(), pb.Topology.Matrix()
	for i := range mf.Bytes {
		if mf.Bytes[i] != mb.Bytes[i] || mf.Hits[i] != mb.Hits[i] || mf.TimeNs[i] != mb.TimeNs[i] {
			t.Fatalf("topology cell %d: fused={%d %d %d} board={%d %d %d}", i,
				mf.Hits[i], mf.Bytes[i], mf.TimeNs[i], mb.Hits[i], mb.Bytes[i], mb.TimeNs[i])
		}
	}
	hf, hb := pf.sizes.Histogram(), pb.sizes.Histogram()
	if len(hf) != len(hb) {
		t.Fatalf("size histogram rows: fused=%d board=%d", len(hf), len(hb))
	}
	for i := range hf {
		if hf[i] != hb[i] {
			t.Fatalf("size bucket %d: fused=%+v board=%+v", i, hf[i], hb[i])
		}
	}
	tfp, tbp := pf.callsites.Top(0), pb.callsites.Top(0)
	if len(tfp) != len(tbp) {
		t.Fatalf("callsite rows: fused=%d board=%d", len(tfp), len(tbp))
	}
	for i := range tfp {
		if tfp[i] != tbp[i] {
			t.Fatalf("callsite row %d: fused=%+v board=%+v", i, tfp[i], tbp[i])
		}
	}
}

// TestFusedIngestRoutesLegacyToBoard checks v1/v2 packs pass through
// Absorb to the blackboard untouched.
func TestFusedIngestRoutesLegacyToBoard(t *testing.T) {
	bb := newBoard(t)
	d, err := NewDispatcher(bb)
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.AddApp(1, "app", 2)
	if err != nil {
		t.Fatal(err)
	}
	fi := NewFusedIngest(d)
	v2 := trace.NewPackBuilderV2(1, 0, 48, 1<<16)
	v2.Add(&trace.Event{Kind: trace.KindSend, Rank: 0, Peer: 1, Size: 64, TStart: 0, TEnd: 1})
	consumed, err := fi.Absorb(0, v2.Take())
	if err != nil {
		t.Fatal(err)
	}
	if consumed {
		t.Fatal("v2 pack must go to the board, not the fused path")
	}
	consumed, err = fi.Absorb(1, buildPack(1, 1, sendEvent(1, 0, 32, 0, 1)))
	if err != nil || consumed {
		t.Fatalf("v1 pack: consumed=%v err=%v", consumed, err)
	}
	bb.Drain()
	if p.Profiler.Events() != 2 {
		t.Fatalf("board path lost events: %d", p.Profiler.Events())
	}
	if fi.FusedPacks() != 0 {
		t.Fatalf("fused packs = %d, want 0", fi.FusedPacks())
	}
}

// TestV3PackOnBoardFailsLoud: a v3 pack routed through PostRaw (instead
// of FusedIngest) must be rejected by the dispatcher, not silently
// misdecoded — the worker pool cannot guarantee per-writer order.
func TestV3PackOnBoardFailsLoud(t *testing.T) {
	bb := newBoard(t)
	d, err := NewDispatcher(bb)
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.AddApp(3, "app", 2)
	if err != nil {
		t.Fatal(err)
	}
	b := trace.NewPackBuilderV3(3, 0, 48, 1<<16)
	b.Add(&trace.Event{Kind: trace.KindSend, Rank: 0, Peer: 1, Size: 8, TStart: 0, TEnd: 1})
	d.PostRaw(b.Take())
	bb.Drain()
	if got := bb.Stats().OpPanics; got != 1 {
		t.Fatalf("panics = %d, want the v3-on-board rejection", got)
	}
	if p.Profiler.Events() != 0 {
		t.Fatalf("misrouted v3 pack was decoded anyway: events = %d", p.Profiler.Events())
	}
}

// TestFusedIngestUnknownApp: a v3 pack for an unregistered app errors at
// ingest instead of reaching the board.
func TestFusedIngestUnknownApp(t *testing.T) {
	bb := newBoard(t)
	d, err := NewDispatcher(bb)
	if err != nil {
		t.Fatal(err)
	}
	fi := NewFusedIngest(d)
	b := trace.NewPackBuilderV3(42, 0, 48, 1<<16)
	b.Add(&trace.Event{Kind: trace.KindSend, Rank: 0, Peer: 1, Size: 8, TStart: 0, TEnd: 1})
	if _, err := fi.Absorb(0, b.Take()); err == nil || !strings.Contains(err.Error(), "unregistered app") {
		t.Fatalf("err = %v", err)
	}
}
