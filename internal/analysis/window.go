package analysis

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/trace"
)

// WindowedModule is the time-resolved analysis layer: it slices virtual
// time into windows and keeps one inner Partial per window, so the
// report answers "what was the application doing during [iW, iW+W)"
// instead of only whole-run aggregates. Windows are tumbling when the
// slide equals the window width and sliding (overlapping) when the slide
// is smaller; every event is folded into each window covering its start
// time, so a sliding configuration costs about window/slide times the
// tumbling fold work.
//
// The inner per-window partials carry the profiler, topology, density,
// wait-state and call-site modules (per the outer selection) and reuse
// the whole Partial merge machinery: window i merged across leaves,
// replicas or epochs is byte-identical to window i computed flat, the
// same associative-commutative argument the reduction tree runs on.
// Two deliberate deviations from the outer Partial:
//
//   - Inner partials always carry AppID 0. The window index is the key;
//     replicas (which fold under AppID 0) and tree leaves (which fold
//     under the real AppID) must produce mergeable windows.
//
//   - Inner wait-state modules are lazy: they never settle while the
//     engine merges, flushes or encodes them. Settling inside a window
//     would pair a channel's sends and recvs positionally *within the
//     window's slice of the queues*, which is not a prefix of the
//     channel's whole-run FIFO matching when a channel straddles a
//     window boundary — early pairing would make "merge of all sealed
//     windows == whole-run partial" false. Pairing happens at read time
//     (report rendering), when the windows are complete.
//
// Lateness is deliberately NOT part of this module: late events always
// merge into their (still-open) window, so window content is exact and
// byte-identical whatever the arrival order. The arrival-time story —
// lag gauges and per-window completeness bounds — lives in
// WindowTracker, outside the canonical content.
type WindowedModule struct {
	mu       sync.Mutex
	windowNs int64
	slideNs  int64
	inner    PartialOptions
	wins     map[int64]*Partial
}

// maxDecodedWindows caps the window count a decoded partial may claim.
// A run long enough to exceed it would hold > 1M live windows in memory
// anyway; on the wire a larger count is hostile input and fails loudly.
const maxDecodedWindows = 1 << 20

// innerWindowOptions derives the per-window module selection from the
// outer partial's: the time-resolved modules of the outer set, minus the
// temporal map (windows subsume it), the size histogram (whole-run
// shape) and the windows themselves (no recursion).
func innerWindowOptions(o PartialOptions) PartialOptions {
	return PartialOptions{
		AppSize:   o.AppSize,
		WaitState: o.WaitState,
		Callsites: o.Callsites,
	}
}

// NewWindowedModule creates a windowed series with the given window
// width and slide (both in virtual nanoseconds; slide must be in
// (0, windowNs]) over the given inner module selection.
func NewWindowedModule(windowNs, slideNs int64, inner PartialOptions) *WindowedModule {
	return &WindowedModule{
		windowNs: windowNs,
		slideNs:  slideNs,
		inner:    inner,
		wins:     make(map[int64]*Partial),
	}
}

// newWindowPartial mints one inner per-window partial: AppID 0 and a
// lazy wait-state module (see the type comment).
func (m *WindowedModule) newWindowPartial() *Partial {
	wp := NewPartial(0, m.inner)
	if wp.Waits != nil {
		wp.Waits.lazy = true
	}
	return wp
}

// Window returns the window width in virtual nanoseconds.
func (m *WindowedModule) Window() int64 { return m.windowNs }

// Slide returns the slide in virtual nanoseconds (== Window for
// tumbling windows).
func (m *WindowedModule) Slide() int64 { return m.slideNs }

// WindowIndex returns the tumbling window index covering virtual time t
// (window i covers [i*slide, i*slide+window)).
func (m *WindowedModule) WindowIndex(t int64) int64 {
	if t < 0 {
		return 0
	}
	return t / m.slideNs
}

// Add folds one event into every window covering its start time.
func (m *WindowedModule) Add(ev *trace.Event) {
	m.mu.Lock()
	m.fold(ev)
	m.mu.Unlock()
}

// fold is Add without the lock (replica fast path, caller owns m). The
// inner modules' fold twins are used directly: the caller's ownership of
// the WindowedModule covers the inner partials too.
func (m *WindowedModule) fold(ev *trace.Event) {
	t := ev.TStart
	if t < 0 {
		t = 0
	}
	hi := t / m.slideNs
	lo := hi
	if m.slideNs < m.windowNs {
		// Sliding: every window i with i*slide <= t < i*slide+window.
		lo = (t-m.windowNs)/m.slideNs + 1
		if t < m.windowNs {
			lo = 0 // the series starts at virtual time zero
		}
	}
	for i := lo; i <= hi; i++ {
		wp := m.wins[i]
		if wp == nil {
			wp = m.newWindowPartial()
			m.wins[i] = wp
		}
		foldWindowEvent(wp, ev)
	}
}

// foldWindowEvent folds one event into an inner window partial through
// the modules' lock-free fold twins (the outer WindowedModule
// synchronization covers them).
func foldWindowEvent(wp *Partial, ev *trace.Event) {
	wp.Profiler.fold(ev)
	wp.Topology.fold(ev)
	wp.Density.fold(ev)
	if wp.Waits != nil {
		wp.Waits.fold(ev)
	}
	if wp.Callsites != nil {
		wp.Callsites.fold(ev)
	}
}

// Len reports how many windows hold content.
func (m *WindowedModule) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.wins)
}

// Indices returns the populated window indices in ascending order.
func (m *WindowedModule) Indices() []int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int64, 0, len(m.wins))
	for i := range m.wins {
		out = append(out, i)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// WindowPartial returns window idx's inner partial (nil if empty). The
// returned partial is shared with the module: treat it as read-only.
func (m *WindowedModule) WindowPartial(idx int64) *Partial {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.wins[idx]
}

// Series extracts one per-window value across the populated index range
// (gaps filled with zero), for sparkline rendering. fn reads one window.
func (m *WindowedModule) Series(fn func(*Partial) float64) (firstIdx int64, values []float64) {
	idxs := m.Indices()
	if len(idxs) == 0 {
		return 0, nil
	}
	first, last := idxs[0], idxs[len(idxs)-1]
	values = make([]float64, last-first+1)
	for _, i := range idxs {
		m.mu.Lock()
		wp := m.wins[i]
		m.mu.Unlock()
		values[i-first] = fn(wp)
	}
	return first, values
}

// Merge folds another windowed series into this one (copy semantics:
// o is read, not consumed).
func (m *WindowedModule) Merge(o *WindowedModule) error {
	if o == nil {
		return nil
	}
	if m.windowNs != o.windowNs || m.slideNs != o.slideNs || m.inner != o.inner {
		return fmt.Errorf("analysis: merging incompatible window series (%d/%d vs %d/%d)",
			m.windowNs, m.slideNs, o.windowNs, o.slideNs)
	}
	// Snapshot o's index set, then merge window by window; inner Merge
	// locks the inner modules itself.
	o.mu.Lock()
	idxs := make([]int64, 0, len(o.wins))
	for i := range o.wins {
		idxs = append(idxs, i)
	}
	o.mu.Unlock()
	for _, i := range idxs {
		o.mu.Lock()
		src := o.wins[i]
		o.mu.Unlock()
		if src == nil {
			continue
		}
		m.mu.Lock()
		dst := m.wins[i]
		if dst == nil {
			dst = m.newWindowPartial()
			m.wins[i] = dst
		}
		m.mu.Unlock()
		if err := dst.Merge(src); err != nil {
			return fmt.Errorf("analysis: window %d: %w", i, err)
		}
	}
	return nil
}

// mergeReset folds o into m with move semantics and leaves o empty; a
// window m has never seen moves wholesale (no allocation, no copying).
// The caller must own o exclusively (it is a paused replica).
func (m *WindowedModule) mergeReset(o *WindowedModule) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, wp := range o.wins {
		dst := m.wins[i]
		if dst == nil {
			m.wins[i] = wp
			delete(o.wins, i)
			continue
		}
		if err := dst.MergeReset(wp); err != nil {
			// Both sides were minted by this module pair from identical
			// options; a mismatch is a programming error, not data.
			panic(fmt.Sprintf("analysis: window %d epoch merge: %v", i, err))
		}
	}
}

// EnableWindows registers the windowed series on the pipeline: a KS on
// the board path, a fold hook on the fused path, and (through
// PartialOptions) the per-window sections of every leaf and replica
// partial. windowNs is the window width in virtual nanoseconds; slideNs
// is the slide (0 = tumbling). Call after every other Enable* the run
// will use — the inner per-window module selection mirrors what is
// enabled at this point — and before EnableReplicas.
func (p *Pipeline) EnableWindows(windowNs, slideNs int64) (*WindowedModule, error) {
	if windowNs <= 0 {
		return nil, fmt.Errorf("analysis: window width %d must be positive", windowNs)
	}
	if slideNs == 0 {
		slideNs = windowNs
	}
	if slideNs < 0 || slideNs > windowNs {
		return nil, fmt.Errorf("analysis: window slide %d outside (0, %d]", slideNs, windowNs)
	}
	inner := innerWindowOptions(p.PartialOptions())
	m := NewWindowedModule(windowNs, slideNs, inner)
	if err := p.registerEventKS("windows", m.Add); err != nil {
		return nil, err
	}
	p.windowed = m
	return m, nil
}

// WindowedSeries returns the pipeline's windowed module (nil unless
// EnableWindows ran).
func (p *Pipeline) WindowedSeries() *WindowedModule {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.windowed
}
