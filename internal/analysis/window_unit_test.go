package analysis

import (
	"strings"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// TestWindowedModuleEdges pins the windowed module's small contracts:
// index math at the clock origin, negative-timestamp clamping, series
// extraction over gappy index ranges, and merge geometry checking.
func TestWindowedModuleEdges(t *testing.T) {
	m := NewWindowedModule(1000, 1000, PartialOptions{AppSize: 2})
	if m.Window() != 1000 || m.Slide() != 1000 {
		t.Fatalf("geometry = %d/%d", m.Window(), m.Slide())
	}
	if got := m.WindowIndex(-5); got != 0 {
		t.Fatalf("WindowIndex(-5) = %d, want 0", got)
	}
	if got := m.WindowIndex(2500); got != 2 {
		t.Fatalf("WindowIndex(2500) = %d, want 2", got)
	}

	// A negative event timestamp folds into window 0, like WindowIndex.
	ev := sendEvent(0, 1, 64, -100, -50)
	m.Add(&ev)
	ev2 := sendEvent(1, 0, 64, 2500, 2600)
	m.Add(&ev2)
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	if wp := m.WindowPartial(0); wp == nil || wp.Profiler.Events() != 1 {
		t.Fatalf("window 0 = %+v", wp)
	}

	// Series spans the populated range with zero-filled gaps.
	first, vals := m.Series(func(wp *Partial) float64 { return float64(wp.Profiler.Events()) })
	if first != 0 || len(vals) != 3 {
		t.Fatalf("series first=%d len=%d, want 0/3", first, len(vals))
	}
	if vals[0] != 1 || vals[1] != 0 || vals[2] != 1 {
		t.Fatalf("series = %v", vals)
	}
	var empty WindowedModule
	if _, vals := empty.Series(func(*Partial) float64 { return 1 }); vals != nil {
		t.Fatalf("empty series = %v", vals)
	}

	// Merge: nil is a no-op, incompatible geometry is a loud error.
	if err := m.Merge(nil); err != nil {
		t.Fatal(err)
	}
	other := NewWindowedModule(500, 500, PartialOptions{AppSize: 2})
	if err := m.Merge(other); err == nil || !strings.Contains(err.Error(), "incompatible") {
		t.Fatalf("incompatible merge: err = %v", err)
	}

	// Compatible merge: overlapping windows accumulate, new ones copy in,
	// and the source is left intact (copy semantics).
	b := NewWindowedModule(1000, 1000, PartialOptions{AppSize: 2})
	ev3 := sendEvent(0, 1, 64, 150, 160)
	ev4 := sendEvent(1, 0, 64, 5200, 5300)
	b.Add(&ev3)
	b.Add(&ev4)
	if err := m.Merge(b); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 3 || b.Len() != 2 {
		t.Fatalf("post-merge lens = %d/%d, want 3/2", m.Len(), b.Len())
	}
	if got := m.WindowPartial(0).Profiler.Events(); got != 2 {
		t.Fatalf("merged window 0 events = %d, want 2", got)
	}
	if got := m.WindowPartial(5).Profiler.Events(); got != 1 {
		t.Fatalf("merged window 5 events = %d, want 1", got)
	}

	// mergeReset: move semantics — overlapping windows fold in, unseen
	// windows move wholesale, and the source drains.
	c := NewWindowedModule(1000, 1000, PartialOptions{AppSize: 2})
	ev5 := sendEvent(0, 1, 64, 150, 160)
	ev6 := sendEvent(0, 1, 64, 7100, 7200)
	c.Add(&ev5)
	c.Add(&ev6)
	m.mergeReset(c)
	if got := m.WindowPartial(0).Profiler.Events(); got != 3 {
		t.Fatalf("epoch-merged window 0 events = %d, want 3", got)
	}
	if m.WindowPartial(7) == nil || m.WindowPartial(7).Profiler.Events() != 1 {
		t.Fatal("moved window 7 missing after mergeReset")
	}
	if wp := c.WindowPartial(0); wp != nil && wp.Profiler.Events() != 0 {
		t.Fatalf("source window 0 not drained: %d events", wp.Profiler.Events())
	}
}

// TestEnableWindowsValidation pins the pipeline-level registration: bad
// geometry and double registration fail loudly, and the accessor returns
// what was enabled.
func TestEnableWindowsValidation(t *testing.T) {
	bb := newBoard(t)
	p, err := NewPipeline(bb, "app", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.EnableWindows(0, 0); err == nil {
		t.Fatal("zero window width accepted")
	}
	if _, err := p.EnableWindows(1000, 2000); err == nil {
		t.Fatal("slide > window accepted")
	}
	if p.WindowedSeries() != nil {
		t.Fatal("series set before a successful enable")
	}
	m, err := p.EnableWindows(1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Slide() != 1000 {
		t.Fatalf("tumbling slide = %d, want window width", m.Slide())
	}
	if p.WindowedSeries() != m {
		t.Fatal("WindowedSeries does not return the enabled module")
	}
	// The KS name is taken now; enabling again must fail, not shadow.
	if _, err := p.EnableWindows(1000, 0); err == nil {
		t.Fatal("double EnableWindows accepted")
	}
}

// TestWindowTrackerEdges pins the tracker's clamps and accessors: grace
// below zero, negative event timestamps, untouched-window completeness,
// distinct-window counting with late-only windows, and publication to
// the telemetry instruments.
func TestWindowTrackerEdges(t *testing.T) {
	reg := telemetry.NewRegistry()
	tm := telemetry.NewWindowMetrics(reg)
	tr := NewWindowTracker(1000, 0, -50, tm)

	tr.SetNow(100)
	if tr.Now() != 100 {
		t.Fatalf("Now = %d", tr.Now())
	}
	tr.SetNow(50) // monotonic: ignored
	if tr.Now() != 100 {
		t.Fatalf("Now after stale SetNow = %d", tr.Now())
	}

	// Negative timestamps clamp to zero (window 0, lag vs clock 100).
	ev := trace.Event{Kind: trace.KindSend, Rank: 0, Peer: 1, TStart: -20, TEnd: -10}
	tr.OnEvent(&ev)
	if tr.LagNs() != 100 || tr.MaxLagNs() != 100 {
		t.Fatalf("lag = %d/%d, want 100/100", tr.LagNs(), tr.MaxLagNs())
	}
	if on, late := tr.WindowCounts(0); on != 1 || late != 0 {
		t.Fatalf("window 0 counts = %d/%d", on, late)
	}

	// A late-only window: clock far past window 3's end (grace clamped
	// to zero by the constructor).
	tr.SetNow(100_000)
	ev2 := trace.Event{Kind: trace.KindSend, Rank: 1, Peer: 0, TStart: 3500, TEnd: 3600}
	tr.OnEvent(&ev2)
	if tr.LateEvents() != 1 || tr.Events() != 2 {
		t.Fatalf("events = %d late = %d", tr.Events(), tr.LateEvents())
	}
	if got := tr.WindowsObserved(); got != 2 {
		t.Fatalf("WindowsObserved = %d, want 2", got)
	}
	if c := tr.Completeness(3); c != 0 {
		t.Fatalf("late-only window completeness = %v, want 0", c)
	}
	if c := tr.Completeness(42); c != 1 {
		t.Fatalf("untouched window completeness = %v, want 1", c)
	}

	tr.Publish()
	if got := reg.Counter("window.events").Value(); got != 2 {
		t.Fatalf("published window.events = %d, want 2", got)
	}
	if got := reg.Counter("window.late_events").Value(); got != 1 {
		t.Fatalf("published window.late_events = %d, want 1", got)
	}
	// Counters publish as deltas: an immediate re-publish adds nothing.
	tr.Publish()
	if got := reg.Counter("window.events").Value(); got != 2 {
		t.Fatalf("re-published window.events = %d, want 2", got)
	}
}

// TestAttachWindowTrackerValidation pins the pipeline registration path
// for the tracker, including the duplicate-registration error.
func TestAttachWindowTrackerValidation(t *testing.T) {
	bb := newBoard(t)
	p, err := NewPipeline(bb, "app", 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.WindowTracker() != nil {
		t.Fatal("tracker set before attach")
	}
	tr := NewWindowTracker(1000, 0, 0, nil)
	if err := p.AttachWindowTracker(tr); err != nil {
		t.Fatal(err)
	}
	if p.WindowTracker() != tr {
		t.Fatal("WindowTracker does not return the attached tracker")
	}
	if err := p.AttachWindowTracker(tr); err == nil {
		t.Fatal("double AttachWindowTracker accepted")
	}
	// Publish without a telemetry bundle is free and safe.
	tr.Publish()
}
