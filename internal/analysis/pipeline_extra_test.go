package analysis

import (
	"bytes"
	"testing"

	"repro/internal/blackboard"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// TestDispatcherPartialPath drives the tree-mode plumbing end to end in
// one process: a leaf-style partial is encoded, posted raw, decoded and
// routed by the partial unpacker, then absorbed into the root pipeline —
// the exact hand-off every aggregator tier performs.
func TestDispatcherPartialPath(t *testing.T) {
	bb := blackboard.New(blackboard.Config{Workers: 2})
	defer bb.Close()
	d, err := NewDispatcher(bb)
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.AddApp(7, "app7", 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Level() != "app7" {
		t.Fatalf("level = %q", p.Level())
	}
	if _, err := p.EnableWaitState(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.EnableTemporal(1_000_000); err != nil {
		t.Fatal(err)
	}
	if _, err := p.EnableCallsites(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.EnableSizes(); err != nil {
		t.Fatal(err)
	}
	opts := p.PartialOptions()
	want := PartialOptions{AppSize: 4, WaitState: true, TemporalWindowNs: 1_000_000, Callsites: true, Sizes: true}
	if opts != want {
		t.Fatalf("partial options = %+v, want %+v", opts, want)
	}

	if err := d.EnablePartials(); err != nil {
		t.Fatal(err)
	}
	// The tree reducer normally consumes decoded partials; stand in for it.
	got := make(chan *Partial, 1)
	err = bb.Register(blackboard.KS{
		Name:          "partial-sink",
		Sensitivities: []blackboard.Type{blackboard.TypeID("app7", TypePartial)},
		Op: func(_ *blackboard.Blackboard, in []*blackboard.Entry) {
			got <- in[0].Payload.(*Partial)
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	leaf := NewPartial(7, opts)
	const n = 32
	for i := 0; i < n; i++ {
		ev := trace.Event{Kind: trace.KindIsend, Rank: int32(i % 4), Peer: int32((i + 1) % 4),
			Tag: 1, Comm: 1, Ctx: 5, Size: 256, TStart: int64(i) * 1000, TEnd: int64(i)*1000 + 400}
		leaf.AddEvent(&ev)
	}
	leaf.AddAudit([]trace.AuditEntry{{Kind: trace.KindIsend, Shed: 4, Kept: n}})
	d.PostRawPartial(leaf.Flush(nil, true))
	bb.Drain()

	var pp *Partial
	select {
	case pp = <-got:
	default:
		t.Fatal("decoded partial never reached the app level")
	}
	p.AbsorbPartial(pp)
	if p.Profiler.Events() != n {
		t.Fatalf("absorbed %d events, want %d", p.Profiler.Events(), n)
	}
	if st := p.Completeness.Stat(trace.KindIsend); st.Shed != 4 || st.Kept != n {
		t.Fatalf("absorbed shed stat = %+v", st)
	}
}

// TestPipelineCodecTelemetry pins the codec accounting on both decode
// paths: the unpacker KS (board path) and FoldPack (fused path) must each
// record their pack's event count.
func TestPipelineCodecTelemetry(t *testing.T) {
	bb := blackboard.New(blackboard.Config{Workers: 1})
	defer bb.Close()
	p, err := NewPipeline(bb, "app", 2)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	p.SetCodecTelemetry(telemetry.NewCodecMetrics(reg))

	ev := trace.Event{Kind: trace.KindSend, Rank: 0, Peer: 1, Size: 8, TStart: 1, TEnd: 2}
	v2 := trace.NewPackBuilderV2(1, 0, trace.MinRecordSize, 1<<12)
	v2.Add(&ev)
	p.PostPack(v2.Take())
	bb.Drain()
	if p.Profiler.Events() != 1 {
		t.Fatalf("board path analyzed %d events", p.Profiler.Events())
	}

	v3 := trace.NewPackBuilderV3(1, 0, trace.MinRecordSize, 1<<12)
	v3.Add(&ev)
	var dec trace.StreamDecoder
	n, err := p.FoldPack(&dec, v3.Take())
	if err != nil || n != 1 {
		t.Fatalf("fused fold = %d events, err %v", n, err)
	}
	if p.Profiler.Events() != 2 {
		t.Fatalf("fused path analyzed %d events total", p.Profiler.Events())
	}
	if _, err := p.FoldPack(&dec, []byte("garbage")); err == nil {
		t.Fatal("garbage pack folded without error")
	}
}

// TestEngineHealthKS feeds the self-telemetry KS one encoded snapshot and
// one junk payload: the snapshot accumulates, the junk is ignored rather
// than killing the KS.
func TestEngineHealthKS(t *testing.T) {
	bb := blackboard.New(blackboard.Config{Workers: 1})
	defer bb.Close()
	k, err := NewEngineHealthKS(bb)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	reg.Counter("engine.test.count").Add(5)
	k.PostMeta(reg.EncodeSnapshot(nil, 1, 1000, 0))
	bb.Post(blackboard.TypeID("", TypeMeta), 1, "not a snapshot")
	bb.Drain()
	if k.Snapshots() != 1 {
		t.Fatalf("snapshots = %d, want 1", k.Snapshots())
	}
	if sum := k.Summary(); len(sum.Metrics) == 0 {
		t.Fatal("summary lost the accumulated series")
	}
}

// TestExportWriteArchive flushes an exporter as an otf2lite archive and
// replays the plain WriteTo stream for comparison.
func TestExportWriteArchive(t *testing.T) {
	m := NewExportModule(3, nil)
	for i := 0; i < 10; i++ {
		ev := trace.Event{Kind: trace.KindRecv, Rank: int32(i % 2), Peer: int32((i + 1) % 2),
			Size: 16, TStart: int64(i) * 100, TEnd: int64(i)*100 + 50}
		m.Add(&ev)
	}
	var buf bytes.Buffer
	if err := m.WriteArchive(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty archive")
	}
	// WriteArchive drains: a second flush writes an empty archive body,
	// not the same events again.
	var again bytes.Buffer
	if err := m.WriteArchive(&again); err != nil {
		t.Fatal(err)
	}
	if again.Len() >= buf.Len() {
		t.Fatalf("second archive (%d bytes) not smaller than first (%d)", again.Len(), buf.Len())
	}
}

// TestMetricLabels pins the report labels and small accessors the render
// layer relies on.
func TestMetricLabels(t *testing.T) {
	cases := map[Metric]string{
		MetricHits:  "hits",
		MetricBytes: "total size",
		MetricTime:  "time",
		Metric(99):  "unknown",
	}
	for m, want := range cases {
		if m.String() != want {
			t.Fatalf("Metric(%d).String() = %q, want %q", m, m.String(), want)
		}
	}
	if NewDensityModule(8).Size() != 8 {
		t.Fatal("density size accessor")
	}
}
