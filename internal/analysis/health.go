package analysis

import (
	"repro/internal/blackboard"
	"repro/internal/telemetry"
)

// TypeMeta is the data-type name of engine-health meta-events: encoded
// telemetry snapshots posted on level "" (the engine observes itself, not
// any one application).
const TypeMeta = "meta"

// EngineHealthKS consumes meta-events on the blackboard and accumulates
// them into per-component time series — the self-telemetry counterpart of
// the profiler modules. The engine's own health data arrives over a VMPI
// stream and through the same blackboard machinery as application events,
// which is the paper's online-consumption thesis applied to the
// measurement infrastructure itself.
type EngineHealthKS struct {
	// Acc holds the accumulated series; safe for concurrent access (the
	// operation runs on the blackboard's worker pool).
	Acc telemetry.Accumulator

	bb    *blackboard.Blackboard
	metaT blackboard.Type
}

// NewEngineHealthKS registers the engine-health knowledge source on the
// board, sensitive to TypeMeta entries whose payloads are encoded
// telemetry snapshots ([]byte).
func NewEngineHealthKS(bb *blackboard.Blackboard) (*EngineHealthKS, error) {
	k := &EngineHealthKS{bb: bb, metaT: blackboard.TypeID("", TypeMeta)}
	err := bb.Register(blackboard.KS{
		Name:          "engine-health",
		Sensitivities: []blackboard.Type{k.metaT},
		Op: func(_ *blackboard.Blackboard, in []*blackboard.Entry) {
			buf, ok := in[0].Payload.([]byte)
			if !ok {
				return // not a snapshot; ignore rather than kill the KS
			}
			// Decode errors are swallowed: a truncated snapshot must not
			// poison the analysis of the run it describes.
			_ = k.Acc.AddEncoded(buf)
		},
	})
	if err != nil {
		return nil, err
	}
	return k, nil
}

// PostMeta posts one encoded snapshot to the board. The buffer is decoded
// and copied by the KS, so stream-block payloads may be recycled once the
// board drains.
func (k *EngineHealthKS) PostMeta(buf []byte) {
	k.bb.Post(k.metaT, int64(len(buf)), buf)
}

// Snapshots reports how many snapshots have been unpacked.
func (k *EngineHealthKS) Snapshots() int { return k.Acc.Snapshots() }

// LastSampleNs returns the virtual timestamp of the newest accumulated
// snapshot (0 if none): the final sampler instant before shutdown.
func (k *EngineHealthKS) LastSampleNs() int64 { return k.Acc.LastVirtualNs() }

// Summary digests the accumulated series (for the -telemetry JSON output).
func (k *EngineHealthKS) Summary() telemetry.Summary { return k.Acc.Summary() }
