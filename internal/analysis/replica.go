package analysis

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/blackboard"
	"repro/internal/trace"
)

// This file is the lock-free parallel analysis layer: per-worker module
// replicas folding events into private memory, merged into the canonical
// modules on epoch boundaries.
//
// The flat path serializes every fold on the modules' mutexes — at high
// core counts the fused ingest collapses into lock convoys on the module
// maps. But PR 5 already made every module's state associative-commutative
// mergeable (the Partial machinery), so the fix is structural, not
// lock-tuning: give each worker its own replica of the module set, fold
// without any synchronization, and run the existing merge on epoch
// boundaries. Merge order and cadence cannot change the result — that is
// exactly the property the reduction tree is built on, and the canonical
// sparse key-sorted Partial encoding makes it checkable byte-for-byte.

// DefaultEpochEvents is the board-path epoch length: how many events a
// worker's replica folds before merging into the canonical modules.
const DefaultEpochEvents = 8192

// DefaultEpochPacks is the fused-path epoch length: how many packs an
// ingest lane folds before merging its replicas.
const DefaultEpochPacks = 64

// Replica is one worker's private module set: the existing module states
// minus their mutexes. Fold writes only replica-local memory, so a worker
// folding into its own replica takes no locks at all.
//
// Concurrency contract: a Replica is single-owner. Either one goroutine
// folds into it, or its owner is externally synchronized (the board's
// worker id, an ingest lane's mutex). Merging transfers the accumulated
// state into a canonical (locked) module set and resets the replica in
// place, reusing its allocated maps and buckets — steady-state fold and
// merge allocate nothing.
type Replica struct {
	pp *Partial
	// foldFn is the cached per-event dispatcher. Built once at
	// construction so the fused decode loop passes a stable func value
	// (no per-pack closure allocation).
	foldFn func(*trace.Event)
	// pending counts events folded since the last merge (board path).
	pending int
}

// NewReplica creates a replica for an application of the given module
// selection.
func NewReplica(appID uint32, opts PartialOptions) *Replica {
	r := &Replica{pp: NewPartial(appID, opts)}
	pp := r.pp
	r.foldFn = func(ev *trace.Event) {
		pp.Profiler.fold(ev)
		pp.Topology.fold(ev)
		pp.Density.fold(ev)
		if pp.Waits != nil {
			pp.Waits.fold(ev)
		}
		if pp.Temporal != nil {
			pp.Temporal.fold(ev)
		}
		if pp.Callsites != nil {
			pp.Callsites.fold(ev)
		}
		if pp.Sizes != nil {
			pp.Sizes.fold(ev)
		}
		if pp.Windows != nil {
			pp.Windows.fold(ev)
		}
	}
	return r
}

// Fold folds one event into the replica without locking.
func (r *Replica) Fold(ev *trace.Event) { r.foldFn(ev) }

// FoldFunc returns the replica's per-event fold dispatcher (a stable
// func value, suitable for trace.StreamDecoder.DecodeDispatch).
func (r *Replica) FoldFunc() func(*trace.Event) { return r.foldFn }

// Partial returns the replica's underlying partial profile.
func (r *Replica) Partial() *Partial { return r.pp }

// Pending reports how many events were folded since the last merge.
func (r *Replica) Pending() int { return r.pending }

// MergeReset folds another partial of the same application into this one
// and resets o to empty in place, keeping o's allocated maps, slices and
// queue backing arrays for reuse. It is the epoch-merge form of Merge:
// same result (Merge copies, MergeReset moves), but a steady-state merge
// of a replica allocates nothing — no re-encoding, no snapshot copies.
// The caller must own o exclusively (it is a paused replica).
func (pp *Partial) MergeReset(o *Partial) error {
	if pp.AppID != o.AppID {
		return fmt.Errorf("analysis: merging partials of different apps (%d vs %d)", pp.AppID, o.AppID)
	}
	if pp.opts != o.opts {
		return fmt.Errorf("analysis: merging partials with different module selections (%+v vs %+v)", pp.opts, o.opts)
	}
	pp.Profiler.mergeReset(o.Profiler)
	pp.Topology.mergeReset(o.Topology)
	pp.Density.mergeReset(o.Density)
	if o.Shed != nil {
		if pp.Shed == nil {
			pp.Shed = NewCompletenessModule()
		}
		pp.Shed.mergeReset(o.Shed)
	}
	if pp.Waits != nil {
		pp.Waits.mergeResetFull(o.Waits)
	}
	if pp.Temporal != nil {
		pp.Temporal.mergeReset(o.Temporal)
	}
	if pp.Callsites != nil {
		pp.Callsites.mergeReset(o.Callsites)
	}
	if pp.Sizes != nil {
		pp.Sizes.mergeReset(o.Sizes)
	}
	if pp.Windows != nil {
		pp.Windows.mergeReset(o.Windows)
	}
	return nil
}

// NewReplica creates a replica matching the pipeline's enabled module
// selection. Call after every Enable* the run will use. An attached
// window tracker is woven into the fold dispatcher here: replicas
// bypass the event KSs, so the lag observer must ride the replica's own
// fold path.
func (p *Pipeline) NewReplica() *Replica {
	r := NewReplica(0, p.PartialOptions())
	p.mu.Lock()
	tr := p.tracker
	p.mu.Unlock()
	if tr != nil {
		inner := r.foldFn
		r.foldFn = func(ev *trace.Event) {
			inner(ev)
			tr.OnEvent(ev)
		}
	}
	return r
}

// MergeReplica folds a replica's accumulated state into the pipeline's
// canonical modules and resets the replica in place (its maps and
// buckets stay allocated for the next epoch). Safe to call concurrently
// for distinct replicas: only the canonical side locks.
func (p *Pipeline) MergeReplica(r *Replica) {
	var t0 time.Time
	if p.rm != nil {
		t0 = time.Now()
	}
	pp := r.pp
	p.Profiler.mergeReset(pp.Profiler)
	p.Topology.mergeReset(pp.Topology)
	p.Density.mergeReset(pp.Density)
	if p.waits != nil && pp.Waits != nil {
		p.waits.mergeResetFull(pp.Waits)
	}
	if p.temporal != nil && pp.Temporal != nil {
		p.temporal.mergeReset(pp.Temporal)
	}
	if p.callsites != nil && pp.Callsites != nil {
		p.callsites.mergeReset(pp.Callsites)
	}
	if p.sizes != nil && pp.Sizes != nil {
		p.sizes.mergeReset(pp.Sizes)
	}
	if pp.Shed != nil {
		p.Completeness.mergeReset(pp.Shed)
	}
	if p.windowed != nil && pp.Windows != nil {
		p.windowed.mergeReset(pp.Windows)
	}
	r.pending = 0
	if p.rm != nil {
		p.rm.OnEpochMerge(time.Since(t0).Nanoseconds())
	}
}

// EnableReplicas switches the pipeline's board path to shared-nothing
// parallel folding: the per-module event KSs (whose Adds all contend on
// the module mutexes) are replaced by a single worker-aware fold KS that
// folds each event into the executing worker's private replica, merging
// into the canonical modules every epochEvents events (0 = default).
// Call after every Enable* the run will use and before any event flows;
// call Settle after the board drains to merge the residue.
//
// Trace export is incompatible (the exporter is an IO proxy, not a
// mergeable module), as is adding further event KSs afterwards.
func (p *Pipeline) EnableReplicas(epochEvents int) error {
	if epochEvents <= 0 {
		epochEvents = DefaultEpochEvents
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.replicaMode {
		return fmt.Errorf("analysis: replicas already enabled on level %q", p.level)
	}
	if p.exports > 0 {
		return fmt.Errorf("analysis: replicas are incompatible with trace export on level %q", p.level)
	}
	// Publish the replica table before the fold KS can run: workers
	// index it lazily, each slot touched only by its owning worker.
	p.epochEvents = epochEvents
	p.reps = make([]*Replica, p.bb.Workers())
	if err := p.bb.Register(blackboard.KS{
		Name:          "fold@" + p.level,
		Sensitivities: []blackboard.Type{blackboard.TypeID(p.level, TypeEvent)},
		OpW: func(_ *blackboard.Blackboard, worker int, in []*blackboard.Entry) {
			rep := p.reps[worker]
			if rep == nil {
				rep = p.NewReplica()
				p.reps[worker] = rep
			}
			rep.Fold(in[0].Payload.(*trace.Event))
			rep.pending++
			if rep.pending >= p.epochEvents {
				p.MergeReplica(rep)
			}
		},
	}); err != nil {
		return err
	}
	for _, name := range p.eventKSNames {
		p.bb.Unregister(name)
	}
	p.replicaMode = true
	if p.rm != nil {
		p.rm.Replicas(len(p.reps))
	}
	return nil
}

// ReplicaMode reports whether EnableReplicas ran.
func (p *Pipeline) ReplicaMode() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.replicaMode
}

// Settle merges every board-worker replica's residue into the canonical
// modules. Call after the board drains (Drain's completion is the
// happens-before edge that hands the workers' replicas to the caller);
// any snapshot, report or module read after Settle sees exactly what the
// flat path would have produced.
func (p *Pipeline) Settle() {
	p.mu.Lock()
	reps := p.reps
	p.mu.Unlock()
	for _, rep := range reps {
		if rep != nil && rep.pending > 0 {
			p.MergeReplica(rep)
		}
	}
}

// FoldPackReplica is FoldPack targeting a private replica instead of the
// shared modules: the same fused decode, but the per-event fold touches
// only replica-local memory. The caller owns rep (see Replica).
func (p *Pipeline) FoldPackReplica(rep *Replica, dec *trace.StreamDecoder, buf []byte) (int, error) {
	var t0 time.Time
	if p.codec != nil {
		t0 = time.Now()
	}
	n, err := dec.DecodeDispatch(buf, rep.foldFn)
	if err != nil {
		return n, fmt.Errorf("analysis: undecodable pack on level %q: %w", p.level, err)
	}
	if p.codec != nil {
		p.codec.OnDecode(n, time.Since(t0).Nanoseconds())
	}
	return n, nil
}

// --- parallel fused ingest ---

// ingestLane is one partition of a parallel FusedIngest: sources hash to
// lanes (src mod lanes), so one source's packs always decode on the same
// lane — preserving the per-writer decode order v3 dictionaries need —
// while distinct lanes share no mutable state. The lane mutex serializes
// concurrent producers that happen to share a lane; it is taken once per
// pack, not per event, so it amortizes to nothing at pack granularity.
type ingestLane struct {
	mu    sync.Mutex
	decs  map[int]*trace.StreamDecoder
	reps  map[*Pipeline]*Replica
	packs int
}

// NewParallelFusedIngest wraps a dispatcher with lane-partitioned v3
// ingest: lanes concurrent callers, each folding into private replicas
// merged into the canonical modules every epochPacks packs per lane
// (0 = default) and at Sync. With lanes <= 1 it degrades to the plain
// serial FusedIngest.
func NewParallelFusedIngest(d *Dispatcher, lanes, epochPacks int) *FusedIngest {
	f := NewFusedIngest(d)
	if lanes <= 1 {
		return f
	}
	if epochPacks <= 0 {
		epochPacks = DefaultEpochPacks
	}
	f.epochPacks = epochPacks
	f.lanes = make([]*ingestLane, lanes)
	for i := range f.lanes {
		f.lanes[i] = &ingestLane{
			decs: make(map[int]*trace.StreamDecoder),
			reps: make(map[*Pipeline]*Replica),
		}
	}
	return f
}

// Lanes returns the ingest lane count (0 when serial).
func (f *FusedIngest) Lanes() int { return len(f.lanes) }

// EpochMerges returns how many lane epoch merges ran.
func (f *FusedIngest) EpochMerges() int64 { return f.epochMerges.Load() }

// MergeNs returns the total wall-clock nanoseconds spent in lane epoch
// merges.
func (f *FusedIngest) MergeNs() int64 { return f.mergeNs.Load() }

// absorbLane folds one v3 pack on the source's lane. Called from Absorb
// when lanes are configured.
func (f *FusedIngest) absorbLane(p *Pipeline, src int, buf []byte) (int, error) {
	lane := f.lanes[src%len(f.lanes)]
	lane.mu.Lock()
	defer lane.mu.Unlock()
	dec := lane.decs[src]
	if dec == nil {
		dec = &trace.StreamDecoder{}
		lane.decs[src] = dec
	}
	rep := lane.reps[p]
	if rep == nil {
		rep = p.NewReplica()
		lane.reps[p] = rep
	}
	n, err := p.FoldPackReplica(rep, dec, buf)
	if err != nil {
		return n, err
	}
	lane.packs++
	if lane.packs >= f.epochPacks {
		lane.packs = 0
		f.mergeLaneLocked(lane)
	}
	return n, nil
}

// mergeLaneLocked merges every replica on the lane into its pipeline's
// canonical modules. Called with the lane mutex held.
func (f *FusedIngest) mergeLaneLocked(lane *ingestLane) {
	if len(lane.reps) == 0 {
		return
	}
	t0 := time.Now()
	for p, rep := range lane.reps {
		p.MergeReplica(rep)
	}
	f.epochMerges.Add(1)
	f.mergeNs.Add(time.Since(t0).Nanoseconds())
}

// Sync merges every lane's replica residue into the canonical modules.
// Call once all producers stopped (and after the board drains, for the
// non-v3 packs that took the board path): afterwards snapshots, reports
// and module reads see exactly what serial ingest would have produced.
func (f *FusedIngest) Sync() {
	for _, lane := range f.lanes {
		lane.mu.Lock()
		lane.packs = 0
		f.mergeLaneLocked(lane)
		lane.mu.Unlock()
	}
}
