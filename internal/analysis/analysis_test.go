package analysis

import (
	"testing"
	"testing/quick"

	"repro/internal/blackboard"
	"repro/internal/trace"
)

func newBoard(t *testing.T) *blackboard.Blackboard {
	t.Helper()
	bb := blackboard.New(blackboard.Config{Workers: 4})
	t.Cleanup(bb.Close)
	return bb
}

// buildPack encodes events into one pack for the given app/rank.
func buildPack(appID uint32, rank int32, events ...trace.Event) []byte {
	b := trace.NewPackBuilder(appID, rank, 48, 1<<20)
	for i := range events {
		b.Add(&events[i])
	}
	return b.Take()
}

func sendEvent(rank, peer int32, size int64, t0, t1 int64) trace.Event {
	return trace.Event{Kind: trace.KindSend, Rank: rank, Peer: peer, Tag: 0, Size: size, TStart: t0, TEnd: t1}
}

func TestPipelineUnpacksAndProfiles(t *testing.T) {
	bb := newBoard(t)
	p, err := NewPipeline(bb, "appA", 4)
	if err != nil {
		t.Fatal(err)
	}
	p.PostPack(buildPack(0, 0,
		sendEvent(0, 1, 100, 0, 10),
		sendEvent(0, 2, 200, 10, 30),
		trace.Event{Kind: trace.KindBarrier, Rank: 0, Peer: -1, TStart: 30, TEnd: 45},
	))
	p.PostPack(buildPack(0, 1, sendEvent(1, 0, 50, 0, 5)))
	bb.Drain()

	if p.Profiler.Events() != 4 {
		t.Fatalf("events = %d", p.Profiler.Events())
	}
	st := p.Profiler.Stat(trace.KindSend)
	if st.Hits != 3 || st.Bytes != 350 || st.TimeNs != 35 {
		t.Fatalf("send stat = %+v", st)
	}
	if st := p.Profiler.Stat(trace.KindBarrier); st.Hits != 1 || st.TimeNs != 15 {
		t.Fatalf("barrier stat = %+v", st)
	}
}

func TestTopologyMatrixFromEvents(t *testing.T) {
	bb := newBoard(t)
	p, err := NewPipeline(bb, "appA", 3)
	if err != nil {
		t.Fatal(err)
	}
	p.PostPack(buildPack(0, 0,
		sendEvent(0, 1, 100, 0, 1),
		sendEvent(0, 1, 100, 1, 2),
		sendEvent(0, 2, 300, 2, 3),
		// Incoming p2p must not double-count the edge.
		trace.Event{Kind: trace.KindRecv, Rank: 0, Peer: 1, Size: 999, TStart: 0, TEnd: 1},
	))
	bb.Drain()
	mat := p.Topology.Matrix()
	if h, b, _ := mat.At(0, 1); h != 2 || b != 200 {
		t.Fatalf("0->1 = hits %d bytes %d", h, b)
	}
	if h, b, _ := mat.At(0, 2); h != 1 || b != 300 {
		t.Fatalf("0->2 = hits %d bytes %d", h, b)
	}
	if h, _, _ := mat.At(1, 0); h != 0 {
		t.Fatal("recv events must not create sender edges")
	}
	if mat.Degree(0) != 2 || mat.Degree(1) != 0 {
		t.Fatalf("degrees wrong: %d %d", mat.Degree(0), mat.Degree(1))
	}
	if mat.TotalBytes() != 500 {
		t.Fatalf("total bytes = %d", mat.TotalBytes())
	}
	edges := 0
	mat.Edges(func(s, d int, h, b, tm int64) { edges++ })
	if edges != 2 {
		t.Fatalf("edges = %d", edges)
	}
}

func TestDensityMaps(t *testing.T) {
	bb := newBoard(t)
	p, err := NewPipeline(bb, "appA", 4)
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0 sends twice, rank 1 once; rank 2 waits 100ns; rank 3 in a
	// barrier for 50ns.
	p.PostPack(buildPack(0, 0, sendEvent(0, 1, 10, 0, 1), sendEvent(0, 1, 20, 1, 2)))
	p.PostPack(buildPack(0, 1, sendEvent(1, 0, 30, 0, 1)))
	p.PostPack(buildPack(0, 2, trace.Event{Kind: trace.KindWait, Rank: 2, Peer: -1, TStart: 0, TEnd: 100}))
	p.PostPack(buildPack(0, 3, trace.Event{Kind: trace.KindBarrier, Rank: 3, Peer: -1, TStart: 0, TEnd: 50}))
	bb.Drain()

	hits := p.Density.Map(trace.KindSend, MetricHits)
	if hits[0] != 2 || hits[1] != 1 || hits[2] != 0 {
		t.Fatalf("send hits map = %v", hits)
	}
	bytes := p.Density.P2PSizeMap()
	if bytes[0] != 30 || bytes[1] != 30 {
		t.Fatalf("p2p size map = %v", bytes)
	}
	waits := p.Density.WaitTimeMap()
	if waits[2] != 100 || waits[0] != 0 {
		t.Fatalf("wait map = %v", waits)
	}
	colls := p.Density.CollectiveTimeMap()
	if colls[3] != 50 || colls[2] != 0 {
		t.Fatalf("collective map = %v", colls)
	}
}

func TestDispatcherRoutesByAppID(t *testing.T) {
	bb := newBoard(t)
	d, err := NewDispatcher(bb)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := d.AddApp(1, "appA", 2)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := d.AddApp(2, "appB", 2)
	if err != nil {
		t.Fatal(err)
	}
	d.PostRaw(buildPack(1, 0, sendEvent(0, 1, 111, 0, 1)))
	d.PostRaw(buildPack(2, 0, sendEvent(0, 1, 222, 0, 1), sendEvent(0, 1, 222, 1, 2)))
	bb.Drain()
	if pa.Profiler.Events() != 1 || pb.Profiler.Events() != 2 {
		t.Fatalf("events: A=%d B=%d", pa.Profiler.Events(), pb.Profiler.Events())
	}
	if st := pa.Profiler.Stat(trace.KindSend); st.Bytes != 111 {
		t.Fatalf("appA bytes = %d", st.Bytes)
	}
	if st := pb.Profiler.Stat(trace.KindSend); st.Bytes != 444 {
		t.Fatalf("appB bytes = %d", st.Bytes)
	}
	if d.Pipeline(1) != pa || d.Pipeline(99) != nil {
		t.Fatal("pipeline lookup wrong")
	}
}

func TestEOSCallback(t *testing.T) {
	bb := newBoard(t)
	p, err := NewPipeline(bb, "appA", 1)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	p.OnFinish(func() { close(done) })
	if p.Finished() {
		t.Fatal("finished too early")
	}
	p.PostEOS()
	bb.Drain()
	select {
	case <-done:
	default:
		t.Fatal("finish callback not invoked")
	}
	if !p.Finished() {
		t.Fatal("not marked finished")
	}
}

func TestModuleMerge(t *testing.T) {
	a, b := NewProfilerModule(2), NewProfilerModule(2)
	ev := sendEvent(0, 1, 100, 0, 10)
	a.Add(&ev)
	b.Add(&ev)
	b.Add(&ev)
	a.Merge(b)
	if st := a.Stat(trace.KindSend); st.Hits != 3 || st.Bytes != 300 {
		t.Fatalf("merged profiler = %+v", st)
	}

	ta, tb := NewTopologyModule(2), NewTopologyModule(2)
	ta.Add(&ev)
	tb.Add(&ev)
	ta.Merge(tb)
	if h, bts, _ := ta.Matrix().At(0, 1); h != 2 || bts != 200 {
		t.Fatalf("merged topology = %d %d", h, bts)
	}

	da, db := NewDensityModule(2), NewDensityModule(2)
	da.Add(&ev)
	db.Add(&ev)
	da.Merge(db)
	if m := da.Map(trace.KindSend, MetricHits); m[0] != 2 {
		t.Fatalf("merged density = %v", m)
	}
}

func TestOutOfRangeRanksIgnored(t *testing.T) {
	topo := NewTopologyModule(2)
	dens := NewDensityModule(2)
	bad := sendEvent(5, 1, 10, 0, 1)
	topo.Add(&bad)
	dens.Add(&bad)
	badPeer := sendEvent(0, 7, 10, 0, 1)
	topo.Add(&badPeer)
	if topo.Matrix().TotalBytes() != 0 {
		t.Fatal("out-of-range events must be dropped")
	}
	if m := dens.Map(trace.KindSend, MetricHits); m[0] != 0 && m[1] != 0 {
		t.Fatalf("density accepted bad rank: %v", m)
	}
}

// Property: for any event set, the profiler's per-kind hit counts sum to
// the number of events, and topology total bytes equal the sum of outgoing
// p2p sizes.
func TestAccountingConservationProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		const size = 8
		bb := blackboard.New(blackboard.Config{Workers: 3})
		defer bb.Close()
		p, err := NewPipeline(bb, "x", size)
		if err != nil {
			return false
		}
		builder := trace.NewPackBuilder(0, 0, 48, 1<<18)
		var wantEvents int64
		var wantP2PBytes int64
		kinds := trace.Kinds()
		for _, v := range raw {
			k := kinds[int(v)%len(kinds)]
			ev := trace.Event{
				Kind: k,
				Rank: int32(v % size), Peer: int32((v / 8) % size),
				Size: int64(v % 1000), TStart: 0, TEnd: int64(v % 50),
			}
			builder.Add(&ev)
			wantEvents++
			if k.IsOutgoingP2P() {
				wantP2PBytes += ev.Size
			}
		}
		if buf := builder.Take(); buf != nil {
			p.PostPack(buf)
		}
		bb.Drain()
		var gotEvents int64
		for _, k := range p.Profiler.Kinds() {
			gotEvents += p.Profiler.Stat(k).Hits
		}
		return gotEvents == wantEvents && p.Topology.Matrix().TotalBytes() == wantP2PBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPipelineThroughput(b *testing.B) {
	bb := blackboard.New(blackboard.Config{Workers: 8})
	defer bb.Close()
	p, err := NewPipeline(bb, "bench", 64)
	if err != nil {
		b.Fatal(err)
	}
	builder := trace.NewPackBuilder(0, 0, 48, 1<<20)
	var pack []byte
	for i := 0; ; i++ {
		ev := sendEvent(int32(i%64), int32((i+1)%64), 1000, int64(i), int64(i+3))
		if builder.Add(&ev) {
			pack = builder.Take()
			break
		}
	}
	b.SetBytes(int64(len(pack)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.PostPack(pack)
	}
	bb.Drain()
}

func TestGarbagePackIsolated(t *testing.T) {
	// An undecodable pack makes the unpacker KS panic; the engine isolates
	// the fault and keeps processing good packs (failure injection).
	bb := newBoard(t)
	p, err := NewPipeline(bb, "app", 2)
	if err != nil {
		t.Fatal(err)
	}
	p.PostPack([]byte("this is not a pack"))
	p.PostPack(buildPack(0, 0, sendEvent(0, 1, 64, 0, 1)))
	bb.Drain()
	if got := bb.Stats().OpPanics; got != 1 {
		t.Fatalf("panics = %d", got)
	}
	if p.Profiler.Events() != 1 {
		t.Fatalf("good pack lost: events = %d", p.Profiler.Events())
	}
}

func TestDispatcherUnknownAppIsolated(t *testing.T) {
	bb := newBoard(t)
	d, err := NewDispatcher(bb)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := d.AddApp(1, "known", 2)
	if err != nil {
		t.Fatal(err)
	}
	d.PostRaw(buildPack(99, 0, sendEvent(0, 1, 1, 0, 1))) // unregistered app
	d.PostRaw(buildPack(1, 0, sendEvent(0, 1, 1, 0, 1)))
	bb.Drain()
	if bb.Stats().OpPanics != 1 {
		t.Fatalf("panics = %d", bb.Stats().OpPanics)
	}
	if pa.Profiler.Events() != 1 {
		t.Fatal("known app's pack lost")
	}
}
