package analysis

import (
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// WindowTracker is the arrival-time side of the windowed analysis: it
// observes every event the engine folds and measures the distance
// between the event's virtual timestamp and the analyzer's virtual
// clock at fold time — the event→report-update latency — plus a
// per-window lateness model.
//
// It is deliberately NOT part of the canonical window content. Window
// partials are byte-identical whatever order events arrive in (a late
// event merges into its still-open window like any other); what arrival
// order changes is *when* a window's numbers became trustworthy, and
// that is what the tracker accounts:
//
//   - Lag: fold-clock minus event timestamp, clamped at zero. Under a
//     push-rate burst the analyzer's clock falls behind the stream and
//     lag rises; after the burst it drains back under the SLO. The
//     gauges window.lag_ns / window.max_lag_ns surface it.
//
//   - Lateness: an event is late for its window when, at fold time, the
//     effective clock (max of analyzer clock and event-time watermark)
//     has already passed the window's end by more than the grace
//     period — the window "should have sealed" before the event showed
//     up. Late events still merge into content, so the per-window
//     completeness bound onTime/(onTime+late) is conservative: the
//     true window content is always at least what an on-time-only
//     reading would have shown.
//
// Concurrency: the clock, watermark and lag ride atomics; the
// per-window counts take one mutex per event. The tracker is shared
// across replicas/lanes, so its counts are exact even when the fold
// path itself is shared-nothing.
type WindowTracker struct {
	windowNs int64
	slideNs  int64
	graceNs  int64

	now       atomic.Int64 // analyzer virtual clock (SetNow, monotonic)
	watermark atomic.Int64 // max event timestamp observed
	lagNs     atomic.Int64 // most recent fold lag
	maxLagNs  atomic.Int64 // high-water fold lag
	events    atomic.Int64
	late      atomic.Int64

	mu     sync.Mutex
	onTime map[int64]int64 // per-window on-time event counts
	lateBy map[int64]int64 // per-window late event counts

	tm             *telemetry.WindowMetrics
	pubEv, pubLate int64 // counter values already published (deltas)
}

// NewWindowTracker creates a tracker for the given window geometry and
// lateness grace period (all virtual nanoseconds; slideNs 0 or out of
// range means tumbling, like NewPartial). tm may be nil.
func NewWindowTracker(windowNs, slideNs, graceNs int64, tm *telemetry.WindowMetrics) *WindowTracker {
	if slideNs <= 0 || slideNs > windowNs {
		slideNs = windowNs
	}
	if graceNs < 0 {
		graceNs = 0
	}
	return &WindowTracker{
		windowNs: windowNs,
		slideNs:  slideNs,
		graceNs:  graceNs,
		onTime:   make(map[int64]int64),
		lateBy:   make(map[int64]int64),
		tm:       tm,
	}
}

// SetNow advances the analyzer's virtual clock (monotonic: an older
// timestamp is ignored). Call from the ingest loop with the recorder or
// arrival clock each time a block is absorbed.
func (tr *WindowTracker) SetNow(now int64) {
	for {
		n := tr.now.Load()
		if now <= n || tr.now.CompareAndSwap(n, now) {
			return
		}
	}
}

// Now returns the analyzer's virtual clock.
func (tr *WindowTracker) Now() int64 { return tr.now.Load() }

// OnEvent observes one folded event. Safe for concurrent callers.
func (tr *WindowTracker) OnEvent(ev *trace.Event) {
	t := ev.TStart
	if t < 0 {
		t = 0
	}
	for {
		w := tr.watermark.Load()
		if t <= w || tr.watermark.CompareAndSwap(w, t) {
			break
		}
	}
	now := tr.now.Load()
	lag := now - t
	if lag < 0 {
		lag = 0
	}
	tr.lagNs.Store(lag)
	for {
		mx := tr.maxLagNs.Load()
		if lag <= mx || tr.maxLagNs.CompareAndSwap(mx, lag) {
			break
		}
	}
	tr.events.Add(1)

	// Lateness is judged against the last window that covers the event
	// (index by slide), whose end is the moment the event stopped being
	// expectable. The effective clock includes the watermark so pure
	// reordering — later events already seen — marks stragglers late
	// even when the analyzer clock itself lags the whole stream.
	idx := t / tr.slideNs
	end := idx*tr.slideNs + tr.windowNs
	eff := now
	if w := tr.watermark.Load(); w > eff {
		eff = w
	}
	isLate := eff-end > tr.graceNs
	tr.mu.Lock()
	if isLate {
		tr.lateBy[idx]++
	} else {
		tr.onTime[idx]++
	}
	tr.mu.Unlock()
	if isLate {
		tr.late.Add(1)
	}
}

// LagNs returns the most recent event→fold lag.
func (tr *WindowTracker) LagNs() int64 { return tr.lagNs.Load() }

// MaxLagNs returns the high-water event→fold lag.
func (tr *WindowTracker) MaxLagNs() int64 { return tr.maxLagNs.Load() }

// Events returns how many events the tracker observed.
func (tr *WindowTracker) Events() int64 { return tr.events.Load() }

// LateEvents returns how many observed events were late for their
// window.
func (tr *WindowTracker) LateEvents() int64 { return tr.late.Load() }

// WindowCounts returns window idx's on-time and late event counts.
func (tr *WindowTracker) WindowCounts(idx int64) (onTime, late int64) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.onTime[idx], tr.lateBy[idx]
}

// Completeness returns window idx's completeness bound in [0, 1]: the
// fraction of the window's events that arrived before it should have
// sealed. Because late events still merge into the window's content,
// the bound is conservative — the rendered window always holds at least
// this fraction of itself. An untouched window is complete.
func (tr *WindowTracker) Completeness(idx int64) float64 {
	on, late := tr.WindowCounts(idx)
	total := on + late
	if total == 0 {
		return 1
	}
	return float64(on) / float64(total)
}

// WindowIndices returns the distinct window indices the tracker has
// counted events for, in no particular order.
func (tr *WindowTracker) WindowIndices() []int64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]int64, 0, len(tr.onTime)+len(tr.lateBy))
	for idx := range tr.onTime {
		out = append(out, idx)
	}
	for idx := range tr.lateBy {
		if _, ok := tr.onTime[idx]; !ok {
			out = append(out, idx)
		}
	}
	return out
}

// WindowsObserved returns how many distinct windows the tracker has
// counted events for.
func (tr *WindowTracker) WindowsObserved() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := len(tr.onTime)
	for idx := range tr.lateBy {
		if _, ok := tr.onTime[idx]; !ok {
			n++
		}
	}
	return n
}

// Publish flushes the tracker's state to its telemetry bundle: gauges
// absolutely, counters as deltas since the previous publication. Call
// from the sampling loop (or once at end of run); free when no bundle
// is attached.
func (tr *WindowTracker) Publish() {
	if tr.tm == nil {
		return
	}
	ev, lt := tr.events.Load(), tr.late.Load()
	tr.mu.Lock()
	dEv, dLt := ev-tr.pubEv, lt-tr.pubLate
	tr.pubEv, tr.pubLate = ev, lt
	open := len(tr.onTime)
	for idx := range tr.lateBy {
		if _, ok := tr.onTime[idx]; !ok {
			open++
		}
	}
	tr.mu.Unlock()
	tr.tm.OnPublish(tr.lagNs.Load(), tr.maxLagNs.Load(), dEv, dLt, open)
}

// AttachWindowTracker wires a tracker into the pipeline's fold paths:
// a KS on the board path, the fused fold list, and (via Pipeline.
// NewReplica) every replica's fold dispatcher. Call after EnableWindows
// and before EnableReplicas or any replica/lane creation.
func (p *Pipeline) AttachWindowTracker(tr *WindowTracker) error {
	if err := p.registerEventKS("windowlag", tr.OnEvent); err != nil {
		return err
	}
	p.mu.Lock()
	p.tracker = tr
	p.mu.Unlock()
	return nil
}

// WindowTracker returns the pipeline's attached tracker (nil if none).
func (p *Pipeline) WindowTracker() *WindowTracker {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tracker
}
