package analysis

import (
	"testing"

	"repro/internal/blackboard"
	"repro/internal/trace"
)

func TestCallsiteAggregation(t *testing.T) {
	m := NewCallsiteModule()
	m.Label(1, "copy_faces")
	m.Label(2, "x_solve")
	add := func(ctx uint32, kind trace.Kind, dur int64) {
		m.Add(&trace.Event{Kind: kind, Ctx: ctx, Size: 10, TStart: 0, TEnd: dur})
	}
	add(1, trace.KindIsend, 5)
	add(1, trace.KindIsend, 5)
	add(1, trace.KindWaitall, 100)
	add(2, trace.KindWaitall, 400)
	add(3, trace.KindBarrier, 50) // unlabeled context

	top := m.Top(0)
	if len(top) != 4 {
		t.Fatalf("rows = %d", len(top))
	}
	if top[0].Label != "x_solve" || top[0].Stat.TimeNs != 400 {
		t.Fatalf("top row = %+v", top[0])
	}
	if top[1].Label != "copy_faces" || top[1].Kind != trace.KindWaitall {
		t.Fatalf("second row = %+v", top[1])
	}
	// Time ordering: 400, 100, 50 (unlabeled ctx 3), 10.
	if top[2].Label != "" || top[2].Ctx != 3 {
		t.Fatalf("unlabeled row = %+v", top[2])
	}
	if got := m.Top(2); len(got) != 2 {
		t.Fatalf("Top(2) = %d rows", len(got))
	}
	if ctxs := m.Contexts(); len(ctxs) != 3 || ctxs[0] != 1 || ctxs[2] != 3 {
		t.Fatalf("contexts = %v", ctxs)
	}
}

func TestCallsiteMerge(t *testing.T) {
	a, b := NewCallsiteModule(), NewCallsiteModule()
	a.Label(1, "phase-a")
	b.Label(2, "phase-b")
	ev1 := trace.Event{Kind: trace.KindSend, Ctx: 1, Size: 5, TEnd: 10}
	ev2 := trace.Event{Kind: trace.KindSend, Ctx: 2, Size: 7, TEnd: 20}
	a.Add(&ev1)
	b.Add(&ev1)
	b.Add(&ev2)
	a.Merge(b)
	top := a.Top(0)
	if len(top) != 2 {
		t.Fatalf("rows = %d", len(top))
	}
	// ctx 1 accumulated 10+10 ns across the two modules, ctx 2 has 20 ns:
	// tied on time, ordered by ctx.
	if top[0].Stat.TimeNs != 20 || top[0].Ctx != 1 {
		t.Fatalf("top = %+v", top)
	}
	for _, row := range top {
		switch row.Ctx {
		case 1:
			if row.Stat.Hits != 2 || row.Label != "phase-a" {
				t.Fatalf("ctx1 = %+v", row)
			}
		case 2:
			if row.Stat.Hits != 1 || row.Label != "phase-b" {
				t.Fatalf("ctx2 = %+v", row)
			}
		}
	}
}

func TestPipelineEnableCallsites(t *testing.T) {
	bb := blackboard.New(blackboard.Config{Workers: 2})
	defer bb.Close()
	p, err := NewPipeline(bb, "app", 2)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := p.EnableCallsites()
	if err != nil {
		t.Fatal(err)
	}
	ev := trace.Event{Kind: trace.KindSend, Rank: 0, Peer: 1, Ctx: 9, Size: 64, TStart: 0, TEnd: 3}
	p.PostPack(buildPack(0, 0, ev))
	bb.Drain()
	top := cs.Top(0)
	if len(top) != 1 || top[0].Ctx != 9 || top[0].Stat.Bytes != 64 {
		t.Fatalf("top = %+v", top)
	}
}
