package analysis

import (
	"sort"
	"sync"

	"repro/internal/trace"
)

// WaitStateModule implements the wait-state analysis the paper announces
// as work in progress (§IV-D): a Scalasca-style classification of
// point-to-point waiting time, made possible precisely because the
// blackboard holds events from *all* ranks of an application — a
// same-process view no purely local reduction can build.
//
// The module pairs send-side events (MPI_Send / MPI_Isend) with the
// matching receive-side events (MPI_Recv, and MPI_Wait completions that
// carry their source) in FIFO order per (sender, receiver, tag,
// communicator) channel, the MPI non-overtaking rule. A receive that
// started before its matching send is a Late Sender: the receiver's time
// between its own start and the send's start is pure wait, attributed to
// the receiving rank.
//
// Pairing is deferred, not eager: Add only inserts the event into its
// channel's time-sorted queue, and matched pairs are settled positionally
// when results are read (or queues are merged/encoded). The parallel
// blackboard hands a knowledge source events in job-scheduling order, not
// time order, so pairing "send with oldest queued recv" at arrival time
// would make the matching depend on worker scheduling. Deferred positional
// pairing over sorted queues reconstructs the channel's true FIFO
// matching whatever order the events arrived in — and is exactly the
// operation the reduction tree's MergeFull performs, so a tree of
// partial profiles settles to the same pairs as the flat analysis.
// The trade-off is queue memory proportional to the channel's message
// count between settles rather than to in-flight messages.
//
// Send-side blocking (Late Receiver) does not occur under the eager
// protocol this runtime models, so only the receive side is classified.
type WaitStateModule struct {
	mu   sync.Mutex
	size int

	// pending events per channel, each queue sorted by time (= the
	// channel's FIFO order, since each side originates at a single rank).
	sends map[chanKey][]int64 // send start times
	recvs map[chanKey][]recvEvt

	// lateNs / lateHits accumulate late-sender wait per receiving rank.
	lateNs   []int64
	lateHits []int64
	pairs    int64

	// lazy suppresses settling on merge, flush and encode (not on the
	// read accessors). Set on per-window modules: a window holds only a
	// slice of each channel's queues, and positional pairing within that
	// slice is not a prefix of the channel's whole-run FIFO matching when
	// a channel straddles a window boundary — settling early would make
	// the merge of all windows diverge from the whole-run module. Lazy
	// queues travel un-paired and settle once, at read time, when the
	// series is complete.
	lazy bool
}

type chanKey struct {
	src, dst int32
	tag      int32
	comm     uint32
}

type recvEvt struct {
	rank   int32
	tStart int64
	tEnd   int64
}

// NewWaitStateModule creates a wait-state module for an application of the
// given rank count.
func NewWaitStateModule(size int) *WaitStateModule {
	return &WaitStateModule{
		size:     size,
		sends:    make(map[chanKey][]int64),
		recvs:    make(map[chanKey][]recvEvt),
		lateNs:   make([]int64, size),
		lateHits: make([]int64, size),
	}
}

// Add inserts one event into its channel queue (no pairing yet — see the
// type comment).
func (m *WaitStateModule) Add(ev *trace.Event) {
	switch ev.Kind {
	case trace.KindSend, trace.KindIsend:
		if ev.Peer < 0 {
			return
		}
		key := chanKey{src: ev.Rank, dst: ev.Peer, tag: ev.Tag, comm: ev.Comm}
		m.mu.Lock()
		m.sends[key] = insertSorted(m.sends[key], ev.TStart,
			func(a, b int64) bool { return a < b })
		m.mu.Unlock()
	case trace.KindRecv, trace.KindWait:
		if ev.Peer < 0 {
			return // wildcard completion without source: unmatchable
		}
		key := chanKey{src: ev.Peer, dst: ev.Rank, tag: ev.Tag, comm: ev.Comm}
		if ev.Kind == trace.KindWait {
			// Wait events carry the matched source but not the original
			// tag; fold them onto the wildcard-tag channel only if a tag
			// was recorded.
			if ev.Tag < 0 {
				return
			}
		}
		rv := recvEvt{rank: ev.Rank, tStart: ev.TStart, tEnd: ev.TEnd}
		m.mu.Lock()
		m.recvs[key] = insertSorted(m.recvs[key], rv, lessRecv)
		m.mu.Unlock()
	}
}

// fold is Add without the lock (replica fast path, caller owns m).
func (m *WaitStateModule) fold(ev *trace.Event) {
	switch ev.Kind {
	case trace.KindSend, trace.KindIsend:
		if ev.Peer < 0 {
			return
		}
		key := chanKey{src: ev.Rank, dst: ev.Peer, tag: ev.Tag, comm: ev.Comm}
		m.sends[key] = insertSorted(m.sends[key], ev.TStart,
			func(a, b int64) bool { return a < b })
	case trace.KindRecv, trace.KindWait:
		if ev.Peer < 0 {
			return
		}
		key := chanKey{src: ev.Peer, dst: ev.Rank, tag: ev.Tag, comm: ev.Comm}
		if ev.Kind == trace.KindWait && ev.Tag < 0 {
			return
		}
		rv := recvEvt{rank: ev.Rank, tStart: ev.TStart, tEnd: ev.TEnd}
		m.recvs[key] = insertSorted(m.recvs[key], rv, lessRecv)
	}
}

func lessRecv(a, b recvEvt) bool {
	if a.tStart != b.tStart {
		return a.tStart < b.tStart
	}
	return a.tEnd < b.tEnd
}

// insertSorted inserts v into the sorted queue q, after any equal
// elements (stable). The common case — in-order arrival — is a plain
// append.
func insertSorted[T any](q []T, v T, less func(x, y T) bool) []T {
	if n := len(q); n == 0 || !less(v, q[n-1]) {
		return append(q, v)
	}
	i := sort.Search(len(q), func(i int) bool { return less(v, q[i]) })
	q = append(q, v)
	copy(q[i+1:], q[i:])
	q[i] = v
	return q
}

// settleLocked positionally pairs every channel that currently holds both
// sides. Called with m.mu held.
func (m *WaitStateModule) settleLocked() {
	for k := range m.sends {
		if len(m.recvs[k]) > 0 {
			m.drainChannel(k)
		}
	}
}

// pair classifies one matched (recv, sendStart) pair. Called with m.mu
// held.
func (m *WaitStateModule) pair(rv recvEvt, sendStart int64) {
	m.pairs++
	if sendStart <= rv.tStart {
		return // sender was ready: no late-sender wait
	}
	wait := sendStart - rv.tStart
	if rv.tEnd-rv.tStart < wait {
		wait = rv.tEnd - rv.tStart
	}
	if wait <= 0 {
		return
	}
	if int(rv.rank) < m.size {
		m.lateNs[rv.rank] += wait
		m.lateHits[rv.rank]++
	}
}

// Pairs reports how many send/recv pairs were matched.
func (m *WaitStateModule) Pairs() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.settleLocked()
	return m.pairs
}

// Unmatched reports how many events are still waiting for their partner
// (non-zero after a run usually means sampled transports or wildcard
// completions).
func (m *WaitStateModule) Unmatched() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.settleLocked()
	var n int64
	for _, q := range m.sends {
		n += int64(len(q))
	}
	for _, q := range m.recvs {
		n += int64(len(q))
	}
	return n
}

// LateSenderMap returns per-rank late-sender wait time in nanoseconds — a
// density map like the paper's Figure 18d, but attributing the wait to its
// cause.
func (m *WaitStateModule) LateSenderMap() []float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.settleLocked()
	out := make([]float64, m.size)
	for r, v := range m.lateNs {
		out[r] = float64(v)
	}
	return out
}

// LateSenderHits returns per-rank late-sender occurrence counts.
func (m *WaitStateModule) LateSenderHits() []int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.settleLocked()
	out := make([]int64, m.size)
	copy(out, m.lateHits)
	return out
}

// TotalLateNs sums late-sender wait across ranks.
func (m *WaitStateModule) TotalLateNs() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.settleLocked()
	var t int64
	for _, v := range m.lateNs {
		t += v
	}
	return t
}

// Merge folds another wait-state module's per-rank accumulators into this
// one (pending unmatched events are not transferred, so o is settled
// first to realize every pair its queues already hold).
func (m *WaitStateModule) Merge(o *WaitStateModule) {
	o.mu.Lock()
	o.settleLocked()
	ln := append([]int64(nil), o.lateNs...)
	lh := append([]int64(nil), o.lateHits...)
	pr := o.pairs
	o.mu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pairs += pr
	for r := range ln {
		if r < m.size {
			m.lateNs[r] += ln[r]
			m.lateHits[r] += lh[r]
		}
	}
}

// MergeFull folds another wait-state module into this one *including*
// the pending unmatched queues, re-pairing any channels that now hold
// both sides. Per channel, all sends originate at one rank and all
// receives at another, and each rank's stream is time-ordered — so every
// pending queue is sorted by time, a sorted merge reconstructs the
// channel's true FIFO order, and positional pairing of the merged queues
// reproduces exactly the pairs the flat single-blackboard analysis would
// have formed. That makes MergeFull associative and commutative: the
// invariant the reduction tree is built on.
func (m *WaitStateModule) MergeFull(o *WaitStateModule) {
	o.mu.Lock()
	ln := append([]int64(nil), o.lateNs...)
	lh := append([]int64(nil), o.lateHits...)
	pr := o.pairs
	sends := make(map[chanKey][]int64, len(o.sends))
	for k, q := range o.sends {
		if len(q) > 0 {
			sends[k] = append([]int64(nil), q...)
		}
	}
	recvs := make(map[chanKey][]recvEvt, len(o.recvs))
	for k, q := range o.recvs {
		if len(q) > 0 {
			recvs[k] = append([]recvEvt(nil), q...)
		}
	}
	o.mu.Unlock()

	m.mu.Lock()
	defer m.mu.Unlock()
	m.pairs += pr
	for r := range ln {
		if r < m.size {
			m.lateNs[r] += ln[r]
			m.lateHits[r] += lh[r]
		}
	}
	for k, q := range sends {
		m.sends[k] = mergeSorted(m.sends[k], q, func(a, b int64) bool { return a < b })
	}
	for k, q := range recvs {
		m.recvs[k] = mergeSorted(m.recvs[k], q, func(a, b recvEvt) bool {
			if a.tStart != b.tStart {
				return a.tStart < b.tStart
			}
			return a.tEnd < b.tEnd
		})
	}
	if !m.lazy {
		for k := range sends {
			m.drainChannel(k)
		}
		for k := range recvs {
			m.drainChannel(k)
		}
	}
}

// mergeResetFull is MergeFull with move semantics: o's queues and
// accumulators are transferred into m and o is left empty, without
// copying. Correctness is the same argument as MergeFull's — sorted
// merge + positional pairing is order-insensitive — but ownership of
// the queue backing arrays moves instead of being duplicated, so an
// epoch merge of a drained replica allocates nothing (mergeSorted
// returns the non-empty side unchanged when the other side is empty).
// The caller must own o exclusively (it is a paused replica).
func (m *WaitStateModule) mergeResetFull(o *WaitStateModule) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pairs += o.pairs
	o.pairs = 0
	for r := range o.lateNs {
		if r < m.size {
			m.lateNs[r] += o.lateNs[r]
			m.lateHits[r] += o.lateHits[r]
		}
		o.lateNs[r], o.lateHits[r] = 0, 0
	}
	for k, q := range o.sends {
		if len(q) > 0 {
			m.sends[k] = mergeSorted(m.sends[k], q, func(a, b int64) bool { return a < b })
		}
		delete(o.sends, k)
	}
	for k, q := range o.recvs {
		if len(q) > 0 {
			m.recvs[k] = mergeSorted(m.recvs[k], q, lessRecv)
		}
		delete(o.recvs, k)
	}
	if !m.lazy {
		m.settleLocked()
	}
}

// drainChannel positionally pairs a channel's queues while both sides
// have entries, trimming empty queues from the maps so the module stays
// in canonical form. Called with m.mu held.
func (m *WaitStateModule) drainChannel(key chanKey) {
	sq, rq := m.sends[key], m.recvs[key]
	n := len(sq)
	if len(rq) < n {
		n = len(rq)
	}
	for i := 0; i < n; i++ {
		m.pair(rq[i], sq[i])
	}
	if len(sq) > n {
		m.sends[key] = sq[n:]
	} else {
		delete(m.sends, key)
	}
	if len(rq) > n {
		m.recvs[key] = rq[n:]
	} else {
		delete(m.recvs, key)
	}
}

// mergeSorted merges two slices already sorted under less.
func mergeSorted[T any](a, b []T, less func(x, y T) bool) []T {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]T, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// EnableWaitState registers a wait-state KS on the pipeline's level and
// returns its module. The analysis is optional because it keeps per-channel
// state proportional to in-flight messages.
func (p *Pipeline) EnableWaitState() (*WaitStateModule, error) {
	m := NewWaitStateModule(p.Profiler.size)
	if err := p.registerEventKS("waitstate", m.Add); err != nil {
		return nil, err
	}
	p.waits = m
	return m, nil
}
