package analysis

import (
	"sync"

	"repro/internal/blackboard"
	"repro/internal/trace"
)

// WaitStateModule implements the wait-state analysis the paper announces
// as work in progress (§IV-D): a Scalasca-style classification of
// point-to-point waiting time, made possible precisely because the
// blackboard holds events from *all* ranks of an application — a
// same-process view no purely local reduction can build.
//
// The module pairs send-side events (MPI_Send / MPI_Isend) with the
// matching receive-side events (MPI_Recv, and MPI_Wait completions that
// carry their source) in FIFO order per (sender, receiver, tag,
// communicator) channel, the MPI non-overtaking rule. A receive that
// started before its matching send is a Late Sender: the receiver's time
// between its own start and the send's start is pure wait, attributed to
// the receiving rank.
//
// Send-side blocking (Late Receiver) does not occur under the eager
// protocol this runtime models, so only the receive side is classified.
type WaitStateModule struct {
	mu   sync.Mutex
	size int

	// pending events per channel, FIFO (events from different ranks
	// arrive in arbitrary order, so both sides queue).
	sends map[chanKey][]int64 // send start times
	recvs map[chanKey][]recvEvt

	// lateNs / lateHits accumulate late-sender wait per receiving rank.
	lateNs   []int64
	lateHits []int64
	pairs    int64
}

type chanKey struct {
	src, dst int32
	tag      int32
	comm     uint32
}

type recvEvt struct {
	rank   int32
	tStart int64
	tEnd   int64
}

// NewWaitStateModule creates a wait-state module for an application of the
// given rank count.
func NewWaitStateModule(size int) *WaitStateModule {
	return &WaitStateModule{
		size:     size,
		sends:    make(map[chanKey][]int64),
		recvs:    make(map[chanKey][]recvEvt),
		lateNs:   make([]int64, size),
		lateHits: make([]int64, size),
	}
}

// Add folds one event in.
func (m *WaitStateModule) Add(ev *trace.Event) {
	switch ev.Kind {
	case trace.KindSend, trace.KindIsend:
		if ev.Peer < 0 {
			return
		}
		key := chanKey{src: ev.Rank, dst: ev.Peer, tag: ev.Tag, comm: ev.Comm}
		m.mu.Lock()
		if q := m.recvs[key]; len(q) > 0 {
			m.pair(q[0], ev.TStart)
			m.recvs[key] = q[1:]
		} else {
			m.sends[key] = append(m.sends[key], ev.TStart)
		}
		m.mu.Unlock()
	case trace.KindRecv, trace.KindWait:
		if ev.Peer < 0 {
			return // wildcard completion without source: unmatchable
		}
		key := chanKey{src: ev.Peer, dst: ev.Rank, tag: ev.Tag, comm: ev.Comm}
		if ev.Kind == trace.KindWait {
			// Wait events carry the matched source but not the original
			// tag; fold them onto the wildcard-tag channel only if a tag
			// was recorded.
			if ev.Tag < 0 {
				return
			}
		}
		rv := recvEvt{rank: ev.Rank, tStart: ev.TStart, tEnd: ev.TEnd}
		m.mu.Lock()
		if q := m.sends[key]; len(q) > 0 {
			m.pair(rv, q[0])
			m.sends[key] = q[1:]
		} else {
			m.recvs[key] = append(m.recvs[key], rv)
		}
		m.mu.Unlock()
	}
}

// pair classifies one matched (recv, sendStart) pair. Called with m.mu
// held.
func (m *WaitStateModule) pair(rv recvEvt, sendStart int64) {
	m.pairs++
	if sendStart <= rv.tStart {
		return // sender was ready: no late-sender wait
	}
	wait := sendStart - rv.tStart
	if rv.tEnd-rv.tStart < wait {
		wait = rv.tEnd - rv.tStart
	}
	if wait <= 0 {
		return
	}
	if int(rv.rank) < m.size {
		m.lateNs[rv.rank] += wait
		m.lateHits[rv.rank]++
	}
}

// Pairs reports how many send/recv pairs were matched.
func (m *WaitStateModule) Pairs() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pairs
}

// Unmatched reports how many events are still waiting for their partner
// (non-zero after a run usually means sampled transports or wildcard
// completions).
func (m *WaitStateModule) Unmatched() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, q := range m.sends {
		n += int64(len(q))
	}
	for _, q := range m.recvs {
		n += int64(len(q))
	}
	return n
}

// LateSenderMap returns per-rank late-sender wait time in nanoseconds — a
// density map like the paper's Figure 18d, but attributing the wait to its
// cause.
func (m *WaitStateModule) LateSenderMap() []float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]float64, m.size)
	for r, v := range m.lateNs {
		out[r] = float64(v)
	}
	return out
}

// LateSenderHits returns per-rank late-sender occurrence counts.
func (m *WaitStateModule) LateSenderHits() []int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int64, m.size)
	copy(out, m.lateHits)
	return out
}

// TotalLateNs sums late-sender wait across ranks.
func (m *WaitStateModule) TotalLateNs() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var t int64
	for _, v := range m.lateNs {
		t += v
	}
	return t
}

// Merge folds another wait-state module's per-rank accumulators into this
// one (pending unmatched events are not transferred).
func (m *WaitStateModule) Merge(o *WaitStateModule) {
	o.mu.Lock()
	ln := append([]int64(nil), o.lateNs...)
	lh := append([]int64(nil), o.lateHits...)
	pr := o.pairs
	o.mu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pairs += pr
	for r := range ln {
		if r < m.size {
			m.lateNs[r] += ln[r]
			m.lateHits[r] += lh[r]
		}
	}
}

// EnableWaitState registers a wait-state KS on the pipeline's level and
// returns its module. The analysis is optional because it keeps per-channel
// state proportional to in-flight messages.
func (p *Pipeline) EnableWaitState() (*WaitStateModule, error) {
	m := NewWaitStateModule(p.Profiler.size)
	err := p.bb.Register(blackboard.KS{
		Name:          "waitstate@" + p.level,
		Sensitivities: []blackboard.Type{blackboard.TypeID(p.level, TypeEvent)},
		Op: func(_ *blackboard.Blackboard, in []*blackboard.Entry) {
			m.Add(in[0].Payload.(*trace.Event))
		},
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}
