package analysis

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

// windowTestOpts is the inner module selection the window property tests
// run: wait-state on (the hard case — pending queues straddle window
// boundaries) plus call-sites.
func windowTestOpts(appSize int) PartialOptions {
	return PartialOptions{AppSize: appSize, WaitState: true, Callsites: true}
}

// TestWindowConcatReconstructsWholeRun is the tumbling-window
// reconstruction law: folding a run into W-sized windows and then
// merging every sealed window back together must reproduce, byte for
// byte, the partial that folded the whole run directly. (Tumbling only:
// a sliding series folds each event into window/slide windows, so its
// concatenation multiply-counts by construction.) This is the property
// that makes per-window series trustworthy — a window holds exactly its
// slice of the run, nothing leaks across boundaries, and the lazy
// wait-state queues pair identically once reassembled.
func TestWindowConcatReconstructsWholeRun(t *testing.T) {
	const appSize = 6
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		opts := windowTestOpts(appSize)
		perRank := genRankEvents(rng, appSize, 400)
		windowNs := int64(200 + rng.Intn(5000))

		m := NewWindowedModule(windowNs, windowNs, opts)
		whole := NewPartial(0, opts)
		ranks := make([]int, appSize)
		for i := range ranks {
			ranks[i] = i
		}
		idx := make([]int, appSize)
		for {
			progressed := false
			for i, r := range ranks {
				if idx[i] < len(perRank[r]) {
					ev := perRank[r][idx[i]]
					m.Add(&ev)
					whole.AddEvent(&ev)
					idx[i]++
					progressed = true
				}
			}
			if !progressed {
				break
			}
		}

		acc := NewPartial(0, opts)
		for _, i := range m.Indices() {
			if err := acc.Merge(m.WindowPartial(i)); err != nil {
				t.Logf("seed %d: window %d merge: %v", seed, i, err)
				return false
			}
		}
		got := acc.AppendCanonical(nil)
		want := whole.AppendCanonical(nil)
		if !bytes.Equal(got, want) {
			t.Logf("seed %d: %d windows of %dns concatenate to %d bytes != whole run %d bytes",
				seed, m.Len(), windowNs, len(got), len(want))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestWindowCompletenessConservative pins the lateness model under
// adversarial reordering: events are shuffled arbitrarily (breaking even
// per-rank order, which the tracker must tolerate — it only reads
// timestamps) and folded with a jittery analyzer clock. Whatever the
// arrival order:
//
//   - every event lands in exactly one tumbling window's count, and the
//     window's canonical content holds ALL of its events — late ones
//     included — so the completeness bound on/(on+late) can only
//     understate what the window holds, never overstate it;
//   - the late marking itself must match an independent replay of the
//     definition (effective clock past window end + grace);
//   - a window that saw no late arrivals reports completeness 1.
func TestWindowCompletenessConservative(t *testing.T) {
	const appSize = 5
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		opts := windowTestOpts(appSize)
		perRank := genRankEvents(rng, appSize, 300)
		var evs []trace.Event
		for _, seq := range perRank {
			evs = append(evs, seq...)
		}
		rng.Shuffle(len(evs), func(i, j int) { evs[i], evs[j] = evs[j], evs[i] })

		windowNs := int64(300 + rng.Intn(3000))
		graceNs := int64(rng.Intn(500))
		m := NewWindowedModule(windowNs, windowNs, opts)
		tr := NewWindowTracker(windowNs, 0, graceNs, nil)

		// Independent replay of the lateness definition.
		wantLate := map[int64]int64{}
		wantOn := map[int64]int64{}
		var now, watermark int64
		for i := range evs {
			ev := &evs[i]
			// A jittery but monotonic analyzer clock: sometimes ahead of
			// the stream, sometimes behind.
			if rng.Intn(3) == 0 {
				now += int64(rng.Intn(2000))
			}
			tr.SetNow(now)
			m.Add(ev)
			tr.OnEvent(ev)

			tv := ev.TStart
			if tv < 0 {
				tv = 0
			}
			if tv > watermark {
				watermark = tv
			}
			idx := tv / windowNs
			eff := now
			if watermark > eff {
				eff = watermark
			}
			if eff-(idx*windowNs+windowNs) > graceNs {
				wantLate[idx]++
			} else {
				wantOn[idx]++
			}
		}

		var counted int64
		for _, idx := range tr.WindowIndices() {
			on, late := tr.WindowCounts(idx)
			counted += on + late
			if on != wantOn[idx] || late != wantLate[idx] {
				t.Logf("seed %d: window %d counts (%d on, %d late), replay wants (%d, %d)",
					seed, idx, on, late, wantOn[idx], wantLate[idx])
				return false
			}
			wp := m.WindowPartial(idx)
			if wp == nil || wp.Profiler.Events() != on+late {
				got := int64(-1)
				if wp != nil {
					got = wp.Profiler.Events()
				}
				t.Logf("seed %d: window %d holds %d events, tracker counted %d: late events leaked out of content",
					seed, idx, got, on+late)
				return false
			}
			c := tr.Completeness(idx)
			if c < 0 || c > 1 {
				t.Logf("seed %d: window %d completeness %v out of range", seed, idx, c)
				return false
			}
			if late == 0 && c != 1 {
				t.Logf("seed %d: window %d has no late events but completeness %v", seed, idx, c)
				return false
			}
			if late > 0 && c >= 1 && on > 0 {
				t.Logf("seed %d: window %d has %d late events but completeness %v", seed, idx, late, c)
				return false
			}
		}
		if counted != int64(len(evs)) || tr.Events() != int64(len(evs)) {
			t.Logf("seed %d: %d events counted across windows, %d observed, %d folded",
				seed, counted, tr.Events(), len(evs))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSlidingWindowCoverage pins the sliding fold: an event is folded
// into every window covering its start time — window/slide of them away
// from the series origin — which is exactly the documented cost factor.
func TestSlidingWindowCoverage(t *testing.T) {
	opts := PartialOptions{AppSize: 2}
	m := NewWindowedModule(4000, 1000, opts)
	ev := trace.Event{Kind: trace.KindSend, Rank: 0, Peer: 1, TStart: 10_500, TEnd: 10_600}
	m.Add(&ev)
	want := []int64{7, 8, 9, 10}
	got := m.Indices()
	if len(got) != len(want) {
		t.Fatalf("indices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("indices = %v, want %v", got, want)
		}
	}
	// Near the origin the cover clips at window zero.
	m2 := NewWindowedModule(4000, 1000, opts)
	ev2 := trace.Event{Kind: trace.KindSend, Rank: 0, Peer: 1, TStart: 1500, TEnd: 1600}
	m2.Add(&ev2)
	if got := m2.Indices(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("origin indices = %v, want [0 1]", got)
	}
}
