package analysis

import (
	"sync"

	"repro/internal/trace"
)

// TemporalModule builds the temporal maps of the paper's report (§IV-D
// lists "topologies, profiles, temporal and spatial maps for MPI and POSIX
// calls"): per-call-kind activity over time, bucketed into fixed windows
// of virtual time. Combined with the spatial density maps it answers
// *when* a behaviour happens, not just *where*.
//
// Buckets grow on demand as later events arrive; an event whose interval
// spans several buckets contributes its duration pro-rata to each (so
// long waits appear as sustained activity, not as a spike at their start).
type TemporalModule struct {
	mu sync.Mutex
	// window is the bucket width in virtual nanoseconds.
	window int64
	// perKind maps kind → per-bucket stats.
	perKind map[trace.Kind][]Stat
	buckets int
}

// NewTemporalModule creates a temporal module with the given bucket width
// in nanoseconds (e.g. 100 ms of virtual time).
func NewTemporalModule(windowNs int64) *TemporalModule {
	if windowNs <= 0 {
		windowNs = 1e8
	}
	return &TemporalModule{window: windowNs, perKind: make(map[trace.Kind][]Stat)}
}

// Window returns the bucket width in nanoseconds.
func (m *TemporalModule) Window() int64 { return m.window }

// Add folds one event in.
func (m *TemporalModule) Add(ev *trace.Event) {
	start, end := ev.TStart, ev.TEnd
	if end < start {
		return
	}
	firstB := int(start / m.window)
	lastB := int(end / m.window)
	m.mu.Lock()
	defer m.mu.Unlock()
	if lastB+1 > m.buckets {
		m.buckets = lastB + 1
	}
	per := m.perKind[ev.Kind]
	if len(per) <= lastB {
		grown := make([]Stat, m.buckets)
		copy(grown, per)
		per = grown
		m.perKind[ev.Kind] = per
	}
	// Hits and bytes land in the start bucket; time is spread pro-rata.
	per[firstB].Hits++
	per[firstB].Bytes += ev.Size
	dur := end - start
	if dur == 0 || firstB == lastB {
		per[firstB].TimeNs += dur
		return
	}
	for b := firstB; b <= lastB; b++ {
		bStart := int64(b) * m.window
		bEnd := bStart + m.window
		lo, hi := max64(start, bStart), min64(end, bEnd)
		if hi > lo {
			per[b].TimeNs += hi - lo
		}
	}
}

// fold is Add without the lock (replica fast path, caller owns m).
func (m *TemporalModule) fold(ev *trace.Event) {
	start, end := ev.TStart, ev.TEnd
	if end < start {
		return
	}
	firstB := int(start / m.window)
	lastB := int(end / m.window)
	if lastB+1 > m.buckets {
		m.buckets = lastB + 1
	}
	per := m.perKind[ev.Kind]
	if len(per) <= lastB {
		grown := make([]Stat, m.buckets)
		copy(grown, per)
		per = grown
		m.perKind[ev.Kind] = per
	}
	per[firstB].Hits++
	per[firstB].Bytes += ev.Size
	dur := end - start
	if dur == 0 || firstB == lastB {
		per[firstB].TimeNs += dur
		return
	}
	for b := firstB; b <= lastB; b++ {
		bStart := int64(b) * m.window
		bEnd := bStart + m.window
		lo, hi := max64(start, bStart), min64(end, bEnd)
		if hi > lo {
			per[b].TimeNs += hi - lo
		}
	}
}

// mergeReset folds o into m and zeroes o's buckets in place, keeping o's
// map keys and slices for reuse. The caller must own o exclusively;
// allocates only when m has to grow a kind's bucket slice.
func (m *TemporalModule) mergeReset(o *TemporalModule) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if o.buckets > m.buckets {
		m.buckets = o.buckets
	}
	for k, per := range o.perKind {
		dst := m.perKind[k]
		if len(dst) < len(per) {
			grown := make([]Stat, len(per))
			copy(grown, dst)
			dst = grown
			m.perKind[k] = dst
		}
		for b := range per {
			dst[b].merge(per[b])
			per[b] = Stat{}
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Buckets returns the number of time buckets observed so far.
func (m *TemporalModule) Buckets() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.buckets
}

// Kinds returns the call kinds observed, unordered.
func (m *TemporalModule) Kinds() []trace.Kind {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]trace.Kind, 0, len(m.perKind))
	for k := range m.perKind {
		out = append(out, k)
	}
	return out
}

// Series returns the per-bucket values of one kind under one metric,
// padded to the module's full bucket count.
func (m *TemporalModule) Series(k trace.Kind, metric Metric) []float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]float64, m.buckets)
	for b, st := range m.perKind[k] {
		switch metric {
		case MetricHits:
			out[b] = float64(st.Hits)
		case MetricBytes:
			out[b] = float64(st.Bytes)
		case MetricTime:
			out[b] = float64(st.TimeNs)
		}
	}
	return out
}

// CommunicationTimeSeries sums time spent in any MPI communication
// (point-to-point, waits, collectives) per bucket — the report's headline
// temporal map.
func (m *TemporalModule) CommunicationTimeSeries() []float64 {
	out := make([]float64, m.Buckets())
	for _, k := range m.Kinds() {
		if !(k.IsP2P() || k.IsWait() || k.IsCollective()) {
			continue
		}
		for b, v := range m.Series(k, MetricTime) {
			out[b] += v
		}
	}
	return out
}

// Merge folds another temporal module (same window) into this one.
func (m *TemporalModule) Merge(o *TemporalModule) {
	o.mu.Lock()
	snap := make(map[trace.Kind][]Stat, len(o.perKind))
	for k, per := range o.perKind {
		cp := make([]Stat, len(per))
		copy(cp, per)
		snap[k] = cp
	}
	ob := o.buckets
	o.mu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	if ob > m.buckets {
		m.buckets = ob
	}
	for k, per := range snap {
		dst := m.perKind[k]
		if len(dst) < len(per) {
			grown := make([]Stat, len(per))
			copy(grown, dst)
			dst = grown
		}
		for b := range per {
			dst[b].merge(per[b])
		}
		m.perKind[k] = dst
	}
}

// EnableTemporal registers a temporal-map KS on the pipeline's level and
// returns its module.
func (p *Pipeline) EnableTemporal(windowNs int64) (*TemporalModule, error) {
	m := NewTemporalModule(windowNs)
	if err := p.registerEventKS("temporal", m.Add); err != nil {
		return nil, err
	}
	p.temporal = m
	return m, nil
}
