package telemetry

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Snapshot wire format (fixed-layout little-endian, the same discipline as
// the trace pack format so meta-events stream through the exact machinery
// they measure):
//
//	header (40 bytes):
//	  magic    uint32   "TEME"
//	  version  uint16
//	  count    uint16   number of metric records
//	  seq      uint64   snapshot sequence number at the source
//	  virtual  int64    DES virtual time, ns
//	  wall     int64    wall clock, unix ns
//	  source   int32    producing universe rank (-1 = host-side)
//	  reserved uint32
//	per metric record:
//	  nameLen  uint16, name bytes
//	  kind     uint8
//	  counter:   value int64
//	  gauge:     value int64, max int64
//	  histogram: count int64, sum int64, nbounds uint16,
//	             bounds nbounds×int64, counts (nbounds+1)×int64
const (
	// SnapshotMagic brands encoded snapshots ("TEME" little-endian).
	SnapshotMagic uint32 = 0x454d4554
	// SnapshotVersion is the current wire version.
	SnapshotVersion uint16 = 1
	// snapshotHeaderSize is the fixed header length in bytes.
	snapshotHeaderSize = 40
)

func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendI64(b []byte, v int64) []byte  { return binary.LittleEndian.AppendUint64(b, uint64(v)) }

func (c *Counter) encode(buf []byte) []byte {
	return appendI64(buf, c.Value())
}

func (g *Gauge) encode(buf []byte) []byte {
	buf = appendI64(buf, g.v.Load())
	return appendI64(buf, g.max.Load())
}

func (f *funcGauge) encode(buf []byte) []byte {
	v := f.fn()
	buf = appendI64(buf, v)
	return appendI64(buf, v)
}

func (h *Histogram) encode(buf []byte) []byte {
	buf = appendI64(buf, h.count.Load())
	buf = appendI64(buf, h.sum.Load())
	buf = appendU16(buf, uint16(len(h.bounds)))
	for _, b := range h.bounds {
		buf = appendI64(buf, b)
	}
	for i := range h.counts {
		buf = appendI64(buf, h.counts[i].Load())
	}
	return buf
}

func (c *Counter) sample() MetricSample {
	return MetricSample{Name: c.name, Kind: KindCounter, Value: c.Value()}
}

func (g *Gauge) sample() MetricSample {
	return MetricSample{Name: g.name, Kind: KindGauge, Value: g.v.Load(), Max: g.max.Load()}
}

func (f *funcGauge) sample() MetricSample {
	v := f.fn()
	return MetricSample{Name: f.name, Kind: KindGauge, Value: v, Max: v}
}

func (h *Histogram) sample() MetricSample {
	return MetricSample{
		Name: h.name, Kind: KindHistogram,
		Value:  h.count.Load(),
		Sum:    h.sum.Load(),
		Bounds: append([]int64(nil), h.bounds...),
		Counts: h.BucketCounts(),
	}
}

// EncodeSnapshot appends a binary snapshot of every registered instrument
// to buf (pass buf[:0] of a recycled block for an allocation-free steady
// state) and returns the extended slice. The wall timestamp is taken here;
// the virtual timestamp and source rank are the caller's.
func (r *Registry) EncodeSnapshot(buf []byte, seq uint64, virtualNs int64, source int32) []byte {
	if r == nil {
		return buf
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	buf = appendU32(buf, SnapshotMagic)
	buf = appendU16(buf, SnapshotVersion)
	buf = appendU16(buf, uint16(len(r.order)))
	buf = appendU64(buf, seq)
	buf = appendI64(buf, virtualNs)
	buf = appendI64(buf, time.Now().UnixNano())
	buf = appendU32(buf, uint32(source))
	buf = appendU32(buf, 0)
	for _, m := range r.order {
		name := m.metricName()
		buf = appendU16(buf, uint16(len(name)))
		buf = append(buf, name...)
		buf = append(buf, byte(m.kind()))
		buf = m.encode(buf)
	}
	return buf
}

// Snapshot builds the decoded form of the registry directly (host-side
// observers that do not go through the wire).
func (r *Registry) Snapshot(seq uint64, virtualNs int64, source int32) *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		Seq: seq, VirtualNs: virtualNs, WallNs: time.Now().UnixNano(), Source: source,
		Metrics: make([]MetricSample, 0, len(r.order)),
	}
	for _, m := range r.order {
		s.Metrics = append(s.Metrics, m.sample())
	}
	return s
}

// MetricSample is one instrument's state inside a snapshot. Value holds
// the counter sum, the gauge's last value, or the histogram's observation
// count; Max, Sum, Bounds and Counts are kind-specific.
type MetricSample struct {
	Name   string
	Kind   Kind
	Value  int64
	Max    int64   // gauges: high-water mark
	Sum    int64   // histograms: sum of observations
	Bounds []int64 // histograms: bucket upper bounds
	Counts []int64 // histograms: per-bucket counts (len(Bounds)+1)
}

// Snapshot is one decoded meta-event: the full registry state at one
// (virtual, wall) instant.
type Snapshot struct {
	Seq       uint64
	VirtualNs int64
	WallNs    int64
	Source    int32
	Metrics   []MetricSample
}

// decodeErr builds a uniform decode error.
func decodeErr(what string) error { return fmt.Errorf("telemetry: truncated snapshot (%s)", what) }

// DecodeSnapshot parses an encoded snapshot. All referenced storage is
// copied, so the input buffer may be recycled immediately.
func DecodeSnapshot(buf []byte) (*Snapshot, error) {
	if len(buf) < snapshotHeaderSize {
		return nil, decodeErr("header")
	}
	le := binary.LittleEndian
	if le.Uint32(buf[0:]) != SnapshotMagic {
		return nil, fmt.Errorf("telemetry: bad snapshot magic %#x", le.Uint32(buf[0:]))
	}
	if v := le.Uint16(buf[4:]); v != SnapshotVersion {
		return nil, fmt.Errorf("telemetry: unsupported snapshot version %d", v)
	}
	count := int(le.Uint16(buf[6:]))
	s := &Snapshot{
		Seq:       le.Uint64(buf[8:]),
		VirtualNs: int64(le.Uint64(buf[16:])),
		WallNs:    int64(le.Uint64(buf[24:])),
		Source:    int32(le.Uint32(buf[32:])),
		Metrics:   make([]MetricSample, 0, count),
	}
	off := snapshotHeaderSize
	need := func(n int) bool { return off+n <= len(buf) }
	readI64 := func() int64 { v := int64(le.Uint64(buf[off:])); off += 8; return v }
	for i := 0; i < count; i++ {
		if !need(2) {
			return nil, decodeErr("name length")
		}
		nameLen := int(le.Uint16(buf[off:]))
		off += 2
		if !need(nameLen + 1) {
			return nil, decodeErr("name")
		}
		m := MetricSample{Name: string(buf[off : off+nameLen])}
		off += nameLen
		m.Kind = Kind(buf[off])
		off++
		switch m.Kind {
		case KindCounter:
			if !need(8) {
				return nil, decodeErr("counter value")
			}
			m.Value = readI64()
		case KindGauge:
			if !need(16) {
				return nil, decodeErr("gauge value")
			}
			m.Value = readI64()
			m.Max = readI64()
		case KindHistogram:
			if !need(18) {
				return nil, decodeErr("histogram header")
			}
			m.Value = readI64()
			m.Sum = readI64()
			nb := int(le.Uint16(buf[off:]))
			off += 2
			if !need(8 * (2*nb + 1)) {
				return nil, decodeErr("histogram buckets")
			}
			m.Bounds = make([]int64, nb)
			for j := range m.Bounds {
				m.Bounds[j] = readI64()
			}
			m.Counts = make([]int64, nb+1)
			for j := range m.Counts {
				m.Counts[j] = readI64()
			}
		default:
			return nil, fmt.Errorf("telemetry: unknown instrument kind %d", m.Kind)
		}
		s.Metrics = append(s.Metrics, m)
	}
	return s, nil
}

// Point is one sample of one series.
type Point struct {
	// VirtualNs and WallNs are the snapshot's dual timestamps.
	VirtualNs int64
	WallNs    int64
	// Value is the series value at that instant.
	Value float64
}

// Series is one named time series accumulated from snapshots.
type Series struct {
	Name   string
	Points []Point
}

// Accumulator folds decoded snapshots into per-series time lines. Each
// metric contributes one or more series: a counter contributes its name; a
// gauge contributes "name" (value) and "name.max" (high-water); a
// histogram contributes "name.count" and "name.mean". The zero value is
// ready to use; all methods are safe for concurrent callers (the analysis
// side runs on the blackboard's worker pool).
type Accumulator struct {
	mu        sync.Mutex
	order     []string
	series    map[string]*Series
	snapshots int
	// lastVirtual is the latest snapshot virtual timestamp folded in —
	// the sampler's final instant, surfaced through the service history
	// so lag consumers know how fresh the last health sample is.
	lastVirtual int64
}

func (a *Accumulator) line(name string) *Series {
	s := a.series[name]
	if s == nil {
		if a.series == nil {
			a.series = make(map[string]*Series)
		}
		s = &Series{Name: name}
		a.series[name] = s
		a.order = append(a.order, name)
	}
	return s
}

// AddSnapshot folds one decoded snapshot in.
func (a *Accumulator) AddSnapshot(s *Snapshot) {
	if s == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.snapshots++
	if s.VirtualNs > a.lastVirtual {
		a.lastVirtual = s.VirtualNs
	}
	add := func(name string, v float64) {
		// Keep each series ordered by virtual time: snapshots travel
		// through the blackboard's concurrent worker pool, so two posted
		// close together can arrive swapped. Ties keep arrival order.
		ln := a.line(name)
		p := Point{VirtualNs: s.VirtualNs, WallNs: s.WallNs, Value: v}
		i := len(ln.Points)
		for i > 0 && ln.Points[i-1].VirtualNs > p.VirtualNs {
			i--
		}
		ln.Points = append(ln.Points, Point{})
		copy(ln.Points[i+1:], ln.Points[i:])
		ln.Points[i] = p
	}
	for _, m := range s.Metrics {
		switch m.Kind {
		case KindCounter:
			add(m.Name, float64(m.Value))
		case KindGauge:
			add(m.Name, float64(m.Value))
			add(m.Name+".max", float64(m.Max))
		case KindHistogram:
			add(m.Name+".count", float64(m.Value))
			mean := 0.0
			if m.Value > 0 {
				mean = float64(m.Sum) / float64(m.Value)
			}
			add(m.Name+".mean", mean)
		}
	}
}

// AddEncoded decodes one wire snapshot and folds it in.
func (a *Accumulator) AddEncoded(buf []byte) error {
	s, err := DecodeSnapshot(buf)
	if err != nil {
		return err
	}
	a.AddSnapshot(s)
	return nil
}

// Snapshots reports how many snapshots have been folded in.
func (a *Accumulator) Snapshots() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.snapshots
}

// LastVirtualNs returns the virtual timestamp of the newest snapshot
// folded in (0 if none): when the engine last heard from its sampler.
func (a *Accumulator) LastVirtualNs() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastVirtual
}

// Names returns the series names in first-seen order.
func (a *Accumulator) Names() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.order...)
}

// Points copies one series' samples (nil for unknown names).
func (a *Accumulator) Points(name string) []Point {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := a.series[name]
	if s == nil {
		return nil
	}
	return append([]Point(nil), s.Points...)
}

// Values copies one series' values in sample order (for sparklines).
func (a *Accumulator) Values(name string) []float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := a.series[name]
	if s == nil {
		return nil
	}
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Value
	}
	return out
}

// MetricSummary condenses one series for the JSON health summary.
type MetricSummary struct {
	Name    string  `json:"name"`
	Samples int     `json:"samples"`
	Last    float64 `json:"last"`
	Max     float64 `json:"max"`
	Mean    float64 `json:"mean"`
}

// Summary is the engine-health digest emitted by the -telemetry flags.
type Summary struct {
	Snapshots int             `json:"snapshots"`
	Metrics   []MetricSummary `json:"metrics"`
}

// Summary digests every series (sorted by name) into last/max/mean.
func (a *Accumulator) Summary() Summary {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := Summary{Snapshots: a.snapshots}
	names := append([]string(nil), a.order...)
	sort.Strings(names)
	for _, name := range names {
		s := a.series[name]
		ms := MetricSummary{Name: name, Samples: len(s.Points)}
		var sum float64
		for _, p := range s.Points {
			if p.Value > ms.Max {
				ms.Max = p.Value
			}
			sum += p.Value
		}
		if n := len(s.Points); n > 0 {
			ms.Last = s.Points[n-1].Value
			ms.Mean = sum / float64(n)
		}
		out.Metrics = append(out.Metrics, ms)
	}
	return out
}
