package telemetry

import "testing"

// TestDisabledTelemetryZeroAllocs is the CI guard for the disabled-path
// contract: every nil-handle operation an instrumented hot path performs
// (stream writes/reads, NIC transfers, sink events, blackboard jobs) must
// cost zero allocations, so runs without -telemetry pay nothing beyond a
// nil check.
func TestDisabledTelemetryZeroAllocs(t *testing.T) {
	var (
		reg     *Registry
		stream  *StreamMetrics
		net     *NetMetrics
		sink    *SinkMetrics
		board   *BoardMetrics
		svc     *ServiceMetrics
		sampler *Sampler
		c       = reg.Counter("c")
		g       = reg.Gauge("g")
		h       = reg.Histogram("h", LatencyBounds)
		lat     = board.KSLatency("x")
	)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		c.AddShard(3, 1)
		g.Set(1)
		g.Add(1)
		h.Observe(1)
		lat.Observe(1)
		stream.OnWrite(64)
		stream.OnRead(64)
		stream.OnWriteStall()
		stream.OnEAGAIN()
		stream.OnQuarantine()
		stream.OnFailover()
		stream.OnDrop()
		stream.CreditsInFlight(2)
		if stream.Shard(1) != nil {
			t.Fatal("nil shard")
		}
		net.OnTransfer(64, 1)
		sink.OnEvent()
		sink.OnFlush(10, 640)
		sink.OnFallback()
		board.OnPost()
		board.OnJob(0)
		board.OnBackoff(0)
		board.OnDrop()
		board.QueueDepth(1)
		svc.OnJob(1, 1)
		svc.HistoryLen(1)
		_ = sampler.Poll(0)
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry allocates %v allocs/op, want 0", allocs)
	}
}

// TestEnabledSteadyStateEncodeAllocs documents that re-encoding into a
// recycled buffer is allocation-free once the buffer has grown to size.
func TestEnabledSteadyStateEncodeAllocs(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a").Add(1)
	reg.Gauge("b").Set(2)
	reg.Histogram("h", LatencyBounds).Observe(3)
	buf := reg.EncodeSnapshot(nil, 0, 0, 0)
	allocs := testing.AllocsPerRun(100, func() {
		buf = reg.EncodeSnapshot(buf[:0], 1, 1, 0)
	})
	if allocs != 0 {
		t.Fatalf("steady-state encode allocates %v allocs/op, want 0", allocs)
	}
}
