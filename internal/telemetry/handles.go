package telemetry

import "fmt"

// Component bundles: one struct per instrumented layer, resolving its
// instrument names once at construction so hot paths touch only nil-safe
// pointers. Every constructor accepts a nil registry and returns nil; every
// method accepts a nil receiver and no-ops with zero allocations — that is
// the entire cost of disabled telemetry.

// StreamMetrics instruments one side of the vmpi stream layer. Multi-rank
// call sites use Shard to spread counter traffic.
type StreamMetrics struct {
	shard       int
	blocksW     *Counter
	bytesW      *Counter
	blocksR     *Counter
	bytesR      *Counter
	stalls      *Counter
	eagains     *Counter
	quarantines *Counter
	failovers   *Counter
	drops       *Counter
	lost        *Counter
	resizes     *Counter
	window      *Gauge
	credits     *Gauge
}

// NewStreamMetrics registers the stream instrument set on reg.
func NewStreamMetrics(reg *Registry) *StreamMetrics {
	if reg == nil {
		return nil
	}
	return &StreamMetrics{
		blocksW:     reg.Counter("stream.blocks_written"),
		bytesW:      reg.Counter("stream.bytes_written"),
		blocksR:     reg.Counter("stream.blocks_read"),
		bytesR:      reg.Counter("stream.bytes_read"),
		stalls:      reg.Counter("stream.write_stalls"),
		eagains:     reg.Counter("stream.eagain"),
		quarantines: reg.Counter("stream.quarantines"),
		failovers:   reg.Counter("stream.failovers"),
		drops:       reg.Counter("stream.blocks_dropped"),
		lost:        reg.Counter("stream.blocks_lost_inflight"),
		resizes:     reg.Counter("stream.window_resizes"),
		window:      reg.Gauge("stream.window"),
		credits:     reg.Gauge("stream.credits_in_flight"),
	}
}

// Shard returns a copy of the bundle whose counter writes land on the
// shard derived from id (e.g. a global rank), so concurrent endpoints do
// not contend on one cache line. The underlying instruments are shared.
func (m *StreamMetrics) Shard(id int) *StreamMetrics {
	if m == nil {
		return nil
	}
	c := *m
	c.shard = id
	return &c
}

// OnWrite records one block of size bytes written.
func (m *StreamMetrics) OnWrite(size int64) {
	if m == nil {
		return
	}
	m.blocksW.AddShard(m.shard, 1)
	m.bytesW.AddShard(m.shard, size)
}

// OnRead records one block of size bytes read.
func (m *StreamMetrics) OnRead(size int64) {
	if m == nil {
		return
	}
	m.blocksR.AddShard(m.shard, 1)
	m.bytesR.AddShard(m.shard, size)
}

// OnWriteStall records one back-pressure stall.
func (m *StreamMetrics) OnWriteStall() {
	if m == nil {
		return
	}
	m.stalls.AddShard(m.shard, 1)
}

// OnEAGAIN records one would-block nonblocking read.
func (m *StreamMetrics) OnEAGAIN() {
	if m == nil {
		return
	}
	m.eagains.AddShard(m.shard, 1)
}

// OnQuarantine records one endpoint quarantined.
func (m *StreamMetrics) OnQuarantine() {
	if m == nil {
		return
	}
	m.quarantines.AddShard(m.shard, 1)
}

// OnFailover records one write redirected to a failover endpoint.
func (m *StreamMetrics) OnFailover() {
	if m == nil {
		return
	}
	m.failovers.AddShard(m.shard, 1)
}

// OnDrop records one block dropped in degraded mode.
func (m *StreamMetrics) OnDrop() {
	if m == nil {
		return
	}
	m.drops.AddShard(m.shard, 1)
}

// OnLostInFlight records n written blocks whose credits were written off
// when their endpoint was quarantined.
func (m *StreamMetrics) OnLostInFlight(n int64) {
	if m == nil {
		return
	}
	m.lost.AddShard(m.shard, n)
}

// OnWindowResize records one runtime credit-window retarget to na buffers.
func (m *StreamMetrics) OnWindowResize(na int) {
	if m == nil {
		return
	}
	m.resizes.AddShard(m.shard, 1)
	m.window.Set(int64(na))
}

// CreditsInFlight records the writer's outstanding (unacknowledged) block
// count; the gauge's high-water mark survives quiet sampling instants.
func (m *StreamMetrics) CreditsInFlight(n int) {
	if m == nil {
		return
	}
	m.credits.Set(int64(n))
}

// NetMetrics instruments the simnet NIC/network model.
type NetMetrics struct {
	messages *Counter
	bytes    *Counter
	backlog  *Gauge
}

// NewNetMetrics registers the network instrument set on reg.
func NewNetMetrics(reg *Registry) *NetMetrics {
	if reg == nil {
		return nil
	}
	return &NetMetrics{
		messages: reg.Counter("net.messages"),
		bytes:    reg.Counter("net.bytes"),
		backlog:  reg.Gauge("net.nic_backlog_ns"),
	}
}

// OnTransfer records one message of size bytes whose sending NIC queue was
// backlogNs of virtual time deep at injection.
func (m *NetMetrics) OnTransfer(size int64, backlogNs int64) {
	if m == nil {
		return
	}
	m.messages.Add(1)
	m.bytes.Add(size)
	m.backlog.Set(backlogNs)
}

// EventsPerPackBounds buckets the sink's events-per-pack distribution.
var EventsPerPackBounds = []int64{1, 16, 64, 256, 1024, 4096, 16384}

// SinkMetrics instruments the instrument-layer event sinks (recorders).
type SinkMetrics struct {
	shard     int
	events    *Counter
	flushes   *Counter
	packBytes *Counter
	fallbacks *Counter
	perPack   *Histogram
}

// NewSinkMetrics registers the sink instrument set on reg.
func NewSinkMetrics(reg *Registry) *SinkMetrics {
	if reg == nil {
		return nil
	}
	return &SinkMetrics{
		events:    reg.Counter("sink.events"),
		flushes:   reg.Counter("sink.pack_flushes"),
		packBytes: reg.Counter("sink.pack_bytes"),
		fallbacks: reg.Counter("sink.fallbacks"),
		perPack:   reg.Histogram("sink.events_per_pack", EventsPerPackBounds),
	}
}

// Shard returns a copy whose counter writes land on the shard derived
// from id. The underlying instruments are shared.
func (m *SinkMetrics) Shard(id int) *SinkMetrics {
	if m == nil {
		return nil
	}
	c := *m
	c.shard = id
	return &c
}

// OnEvent records one event recorded into the sink.
func (m *SinkMetrics) OnEvent() {
	if m == nil {
		return
	}
	m.events.AddShard(m.shard, 1)
}

// OnFlush records one pack of events totaling bytes flushed to the stream.
func (m *SinkMetrics) OnFlush(events int, bytes int64) {
	if m == nil {
		return
	}
	m.flushes.AddShard(m.shard, 1)
	m.packBytes.AddShard(m.shard, bytes)
	m.perPack.Observe(int64(events))
}

// OnFallback records one switch to the local-profile fallback.
func (m *SinkMetrics) OnFallback() {
	if m == nil {
		return
	}
	m.fallbacks.AddShard(m.shard, 1)
}

// CodecMetrics instruments the pack codec on both sides of the wire:
// encoded/decoded volume, wire vs logical bytes (their ratio is the
// compression factor), and wall-clock nanoseconds spent encoding and
// decoding (divide by the event counters for ns/event).
type CodecMetrics struct {
	shard        int
	encPacks     *Counter
	encEvents    *Counter
	wireBytes    *Counter
	logicalBytes *Counter
	encNs        *Counter
	decPacks     *Counter
	decEvents    *Counter
	decNs        *Counter
}

// NewCodecMetrics registers the codec instrument set on reg.
func NewCodecMetrics(reg *Registry) *CodecMetrics {
	if reg == nil {
		return nil
	}
	return &CodecMetrics{
		encPacks:     reg.Counter("codec.encoded_packs"),
		encEvents:    reg.Counter("codec.encoded_events"),
		wireBytes:    reg.Counter("codec.wire_bytes"),
		logicalBytes: reg.Counter("codec.logical_bytes"),
		encNs:        reg.Counter("codec.encode_ns"),
		decPacks:     reg.Counter("codec.decoded_packs"),
		decEvents:    reg.Counter("codec.decoded_events"),
		decNs:        reg.Counter("codec.decode_ns"),
	}
}

// Shard returns a copy whose counter writes land on the shard derived
// from id. The underlying instruments are shared.
func (m *CodecMetrics) Shard(id int) *CodecMetrics {
	if m == nil {
		return nil
	}
	c := *m
	c.shard = id
	return &c
}

// OnEncode records one encoded pack: its event count, its bytes on the
// wire, the logical (fixed-record) bytes it stands for, and the
// wall-clock nanoseconds spent encoding it.
func (m *CodecMetrics) OnEncode(events int, wire, logical, ns int64) {
	if m == nil {
		return
	}
	m.encPacks.AddShard(m.shard, 1)
	m.encEvents.AddShard(m.shard, int64(events))
	m.wireBytes.AddShard(m.shard, wire)
	m.logicalBytes.AddShard(m.shard, logical)
	m.encNs.AddShard(m.shard, ns)
}

// OnDecode records one decoded pack: its event count and the wall-clock
// nanoseconds spent decoding it.
func (m *CodecMetrics) OnDecode(events int, ns int64) {
	if m == nil {
		return
	}
	m.decPacks.AddShard(m.shard, 1)
	m.decEvents.AddShard(m.shard, int64(events))
	m.decNs.AddShard(m.shard, ns)
}

// BoardMetrics instruments the blackboard: post/job/backoff rates, FIFO
// depth, and per-KS job latency histograms.
type BoardMetrics struct {
	reg      *Registry
	posted   *Counter
	jobs     *Counter
	backoffs *Counter
	dropped  *Counter
	depth    *Gauge
}

// NewBoardMetrics registers the blackboard instrument set on reg.
func NewBoardMetrics(reg *Registry) *BoardMetrics {
	if reg == nil {
		return nil
	}
	return &BoardMetrics{
		reg:      reg,
		posted:   reg.Counter("bb.posted"),
		jobs:     reg.Counter("bb.jobs"),
		backoffs: reg.Counter("bb.backoffs"),
		dropped:  reg.Counter("bb.dropped"),
		depth:    reg.Gauge("bb.queue_depth"),
	}
}

// OnPost records one entry posted.
func (m *BoardMetrics) OnPost() {
	if m == nil {
		return
	}
	m.posted.Add(1)
}

// OnJob records one KS job executed.
func (m *BoardMetrics) OnJob(shard int) {
	if m == nil {
		return
	}
	m.jobs.AddShard(shard, 1)
}

// OnBackoff records one idle-worker backoff.
func (m *BoardMetrics) OnBackoff(shard int) {
	if m == nil {
		return
	}
	m.backoffs.AddShard(shard, 1)
}

// OnDrop records one entry dropped after close.
func (m *BoardMetrics) OnDrop() {
	if m == nil {
		return
	}
	m.dropped.Add(1)
}

// QueueDepth records the current job-FIFO depth.
func (m *BoardMetrics) QueueDepth(n int64) {
	if m == nil {
		return
	}
	m.depth.Set(n)
}

// KSLatency returns (registering on first use) the wall-clock job latency
// histogram for the named knowledge source. Nil bundle → nil histogram.
func (m *BoardMetrics) KSLatency(name string) *Histogram {
	if m == nil {
		return nil
	}
	return m.reg.Histogram("bb.ks_latency."+name, LatencyBounds)
}

// TreeMetrics instruments the multi-level reduction tree: per-tier
// ingest volume, partial-profile merge counts and latency, forwarded
// bytes, and the aggregator's pending-partial queue depth. The names
// land in the registry like every other bundle, so the engine-health
// chapter picks the tree up automatically.
type TreeMetrics struct {
	shard        int
	ingestBlocks []*Counter
	ingestBytes  []*Counter
	partialsIn   *Counter
	partialsOut  *Counter
	fwdBytes     *Counter
	merges       *Counter
	mergeNs      *Histogram
	pending      *Gauge
	reparented   *Counter
}

// NewTreeMetrics registers the reduction-tree instrument set on reg for
// a tree of the given tier count (per-tier ingest instruments are
// indexed by the tier a block arrives *into*).
func NewTreeMetrics(reg *Registry, tiers int) *TreeMetrics {
	if reg == nil {
		return nil
	}
	m := &TreeMetrics{
		partialsIn:  reg.Counter("tbon.partials_in"),
		partialsOut: reg.Counter("tbon.partials_out"),
		fwdBytes:    reg.Counter("tbon.forward_bytes"),
		merges:      reg.Counter("tbon.merges"),
		mergeNs:     reg.Histogram("tbon.merge_ns", LatencyBounds),
		pending:     reg.Gauge("tbon.pending_partials"),
		reparented:  reg.Counter("tbon.reparented_blocks"),
	}
	for t := 0; t < tiers; t++ {
		suffix := fmt.Sprintf(".t%d", t)
		m.ingestBlocks = append(m.ingestBlocks, reg.Counter("tbon.ingest_blocks"+suffix))
		m.ingestBytes = append(m.ingestBytes, reg.Counter("tbon.ingest_bytes"+suffix))
	}
	return m
}

// Shard returns a copy whose counter writes land on the shard derived
// from id (e.g. the aggregator's local rank). The underlying
// instruments are shared.
func (m *TreeMetrics) Shard(id int) *TreeMetrics {
	if m == nil {
		return nil
	}
	c := *m
	c.shard = id
	return &c
}

// OnIngest records one encoded partial of size bytes arriving into tier.
func (m *TreeMetrics) OnIngest(tier int, size int64) {
	if m == nil || tier < 0 || tier >= len(m.ingestBytes) {
		return
	}
	m.ingestBlocks[tier].AddShard(m.shard, 1)
	m.ingestBytes[tier].AddShard(m.shard, size)
	m.partialsIn.AddShard(m.shard, 1)
}

// OnMerge records one partial-profile merge taking ns wall-clock
// nanoseconds.
func (m *TreeMetrics) OnMerge(ns int64) {
	if m == nil {
		return
	}
	m.merges.AddShard(m.shard, 1)
	m.mergeNs.Observe(ns)
}

// OnForward records one merged partial of size bytes forwarded upward.
func (m *TreeMetrics) OnForward(size int64) {
	if m == nil {
		return
	}
	m.partialsOut.AddShard(m.shard, 1)
	m.fwdBytes.AddShard(m.shard, size)
}

// OnReparent records one block that arrived over a failover endpoint
// (i.e. from a child whose primary parent died).
func (m *TreeMetrics) OnReparent() {
	if m == nil {
		return
	}
	m.reparented.AddShard(m.shard, 1)
}

// PendingPartials records an aggregator's per-app accumulator count.
func (m *TreeMetrics) PendingPartials(n int) {
	if m == nil {
		return
	}
	m.pending.Set(int64(n))
}

// ControllerMetrics instruments the adaptive overload controller: its
// escalation level, decision counts, the freshness of the engine-health
// snapshots it steers by, and its estimate of the transport backlog. The
// names land in the registry like every other bundle, so the controller
// shows up in the engine-health chapter it feeds from.
type ControllerMetrics struct {
	level       *Gauge
	decisions   *Counter
	escalations *Counter
	relaxations *Counter
	lagNs       *Gauge
	backlog     *Gauge
}

// NewControllerMetrics registers the controller instrument set on reg.
func NewControllerMetrics(reg *Registry) *ControllerMetrics {
	if reg == nil {
		return nil
	}
	return &ControllerMetrics{
		level:       reg.Gauge("adapt.level"),
		decisions:   reg.Counter("adapt.decisions"),
		escalations: reg.Counter("adapt.escalations"),
		relaxations: reg.Counter("adapt.relaxations"),
		lagNs:       reg.Gauge("adapt.snapshot_lag_ns"),
		backlog:     reg.Gauge("adapt.backlog_bytes"),
	}
}

// OnDecision records one control decision and the resulting level.
func (m *ControllerMetrics) OnDecision(level int) {
	if m == nil {
		return
	}
	m.decisions.Add(1)
	m.level.Set(int64(level))
}

// OnEscalate records one escalation (level increase).
func (m *ControllerMetrics) OnEscalate() {
	if m == nil {
		return
	}
	m.escalations.Add(1)
}

// OnRelax records one de-escalation (level decrease).
func (m *ControllerMetrics) OnRelax() {
	if m == nil {
		return
	}
	m.relaxations.Add(1)
}

// SnapshotLag records the wall-clock age of the engine-health snapshot the
// controller just acted on — the control loop's sensing latency.
func (m *ControllerMetrics) SnapshotLag(ns int64) {
	if m == nil {
		return
	}
	m.lagNs.Set(ns)
}

// Backlog records the controller's estimate of unconsumed stream bytes
// (written minus read), its proxy for transport pressure.
func (m *ControllerMetrics) Backlog(bytes int64) {
	if m == nil {
		return
	}
	m.backlog.Set(bytes)
}

// ServiceMetrics instruments the profiling service front-end.
type ServiceMetrics struct {
	jobs    *Counter
	apps    *Counter
	events  *Counter
	history *Gauge
}

// NewServiceMetrics registers the service instrument set on reg.
func NewServiceMetrics(reg *Registry) *ServiceMetrics {
	if reg == nil {
		return nil
	}
	return &ServiceMetrics{
		jobs:    reg.Counter("service.jobs"),
		apps:    reg.Counter("service.apps"),
		events:  reg.Counter("service.events"),
		history: reg.Gauge("service.history_len"),
	}
}

// OnJob records one completed profiling job with its app count and total
// recorded events.
func (m *ServiceMetrics) OnJob(apps int, events int64) {
	if m == nil {
		return
	}
	m.jobs.Add(1)
	m.apps.Add(int64(apps))
	m.events.Add(events)
}

// HistoryLen records the current history-ring length.
func (m *ServiceMetrics) HistoryLen(n int) {
	if m == nil {
		return
	}
	m.history.Set(int64(n))
}

// DaemonMetrics instruments the profiling daemon (serviced): the
// per-session multi-tenant layer above the in-process service. All
// methods are nil-safe, so a daemon without telemetry pays nothing.
type DaemonMetrics struct {
	live     *Gauge
	sessions *Counter
	rejected *Counter
	aborted  *Counter
	bytes    *Counter
	packs    *Counter
	shed     *Counter
	backlog  *Gauge
}

// NewDaemonMetrics registers the daemon instrument set on reg.
func NewDaemonMetrics(reg *Registry) *DaemonMetrics {
	if reg == nil {
		return nil
	}
	return &DaemonMetrics{
		live:     reg.Gauge("daemon.sessions_live"),
		sessions: reg.Counter("daemon.sessions"),
		rejected: reg.Counter("daemon.sessions_rejected"),
		aborted:  reg.Counter("daemon.sessions_aborted"),
		bytes:    reg.Counter("daemon.pack_bytes"),
		packs:    reg.Counter("daemon.packs"),
		shed:     reg.Counter("daemon.shed_events"),
		backlog:  reg.Gauge("daemon.credit_backlog"),
	}
}

// OnRegister records a session opening and the new live count.
func (m *DaemonMetrics) OnRegister(live int) {
	if m == nil {
		return
	}
	m.sessions.Add(1)
	m.live.Set(int64(live))
}

// OnReject records an admission rejection (daemon at capacity).
func (m *DaemonMetrics) OnReject() {
	if m == nil {
		return
	}
	m.rejected.Add(1)
}

// OnEnd records a session ending (closed or aborted) and the new live
// count.
func (m *DaemonMetrics) OnEnd(live int, aborted bool) {
	if m == nil {
		return
	}
	if aborted {
		m.aborted.Add(1)
	}
	m.live.Set(int64(live))
}

// OnPack records one ingested pack frame.
func (m *DaemonMetrics) OnPack(bytes int) {
	if m == nil {
		return
	}
	m.packs.Add(1)
	m.bytes.Add(int64(bytes))
}

// OnShed records events shed by a session's admission governor.
func (m *DaemonMetrics) OnShed(events int64) {
	if m == nil {
		return
	}
	m.shed.Add(events)
}

// CreditBacklog records the worst per-session credit overrun observed —
// how far past its window the most aggressive tenant has pushed.
func (m *DaemonMetrics) CreditBacklog(frames int64) {
	if m == nil {
		return
	}
	m.backlog.Set(frames)
}

// ReplicaMetrics instruments the lock-free parallel analysis path:
// per-worker module replicas folding without locks, merged into the
// canonical modules on epoch boundaries. All methods are nil-safe, so a
// serial engine pays nothing.
type ReplicaMetrics struct {
	replicas *Gauge
	epochs   *Counter
	mergeNs  *Histogram
}

// NewReplicaMetrics registers the replica instrument set on reg.
func NewReplicaMetrics(reg *Registry) *ReplicaMetrics {
	if reg == nil {
		return nil
	}
	return &ReplicaMetrics{
		replicas: reg.Gauge("replica.count"),
		epochs:   reg.Counter("replica.epoch_merges"),
		mergeNs:  reg.Histogram("replica.merge_ns", LatencyBounds),
	}
}

// Replicas records how many live module replicas exist.
func (m *ReplicaMetrics) Replicas(n int) {
	if m == nil {
		return
	}
	m.replicas.Set(int64(n))
}

// OnEpochMerge records one replica→canonical epoch merge taking ns
// wall-clock nanoseconds.
func (m *ReplicaMetrics) OnEpochMerge(ns int64) {
	if m == nil {
		return
	}
	m.epochs.Add(1)
	m.mergeNs.Observe(ns)
}

// WindowMetrics instruments the time-resolved windowed analysis layer:
// the event→report-update lag (virtual event timestamp vs analyzer fold
// clock) and the lateness accounting behind per-window completeness
// bounds. Fed by analysis.WindowTracker.Publish, not per event, so the
// fold hot path stays free of instrument traffic. All methods are
// nil-safe.
type WindowMetrics struct {
	lagNs    *Gauge
	maxLagNs *Gauge
	events   *Counter
	late     *Counter
	open     *Gauge
}

// NewWindowMetrics registers the windowed-analysis instrument set on reg.
func NewWindowMetrics(reg *Registry) *WindowMetrics {
	if reg == nil {
		return nil
	}
	return &WindowMetrics{
		lagNs:    reg.Gauge("window.lag_ns"),
		maxLagNs: reg.Gauge("window.max_lag_ns"),
		events:   reg.Counter("window.events"),
		late:     reg.Counter("window.late_events"),
		open:     reg.Gauge("window.open"),
	}
}

// OnPublish records one tracker publication: the current and high-water
// event→fold lag, the event/late-event counts folded since the last
// publication (deltas — the counters accumulate), and the number of
// windows observed so far.
func (m *WindowMetrics) OnPublish(lagNs, maxLagNs, events, late int64, open int) {
	if m == nil {
		return
	}
	m.lagNs.Set(lagNs)
	m.maxLagNs.Set(maxLagNs)
	m.events.Add(events)
	m.late.Add(late)
	m.open.Set(int64(open))
}
