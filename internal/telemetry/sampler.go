package telemetry

import (
	"time"

	"repro/internal/des"
)

// StreamChannel is the dedicated VMPI stream channel for meta-events.
// Data streams use low channel numbers (the profiled run's pipes); keeping
// telemetry on its own channel gives snapshots distinct wire tags so they
// never interleave with application blocks on a shared tag.
const StreamChannel = 9

// SnapshotBlockSize is the stream block size used for meta-event blocks:
// large enough for a few hundred instruments, small enough to recycle
// through the shared block pool.
const SnapshotBlockSize = 16 << 10

// BlockWriter is the sink a Sampler writes encoded snapshots to. It is
// satisfied by *vmpi.Stream; declaring it here keeps telemetry free of a
// vmpi import (vmpi itself is instrumented by this package).
type BlockWriter interface {
	Write(payload []byte, size int64) error
}

// Sampler periodically packs a registry into binary meta-events on a
// stream. It is driven from the instrumented rank's own event flow (call
// Poll wherever convenient, e.g. per recorded event): sampling rides the
// simulation clock, so snapshot cadence is in virtual time like every
// other measurement in the engine. A nil Sampler no-ops.
type Sampler struct {
	reg    *Registry
	w      BlockWriter
	getBuf func(n int) []byte
	period des.Time
	next   des.Time
	seq    uint64
	source int32
	err    error
}

// NewSampler builds a sampler that snapshots reg every period of virtual
// time and writes to w, stamping snapshots with the given source rank.
// Nil reg or w yields a nil (disabled) sampler; period <= 0 defaults to
// 10ms of virtual time.
func NewSampler(reg *Registry, w BlockWriter, period time.Duration, source int) *Sampler {
	if reg == nil || w == nil {
		return nil
	}
	if period <= 0 {
		period = 10 * time.Millisecond
	}
	return &Sampler{reg: reg, w: w, period: des.Time(period), source: int32(source)}
}

// SetBufferFunc installs the snapshot buffer source (e.g. the vmpi block
// pool), so steady-state sampling allocates nothing new. The function
// receives the capacity hint and returns a zero-length slice to append
// into; without one the sampler falls back to make.
func (s *Sampler) SetBufferFunc(f func(n int) []byte) {
	if s == nil {
		return
	}
	s.getBuf = f
}

// Poll emits a snapshot if at least one period of virtual time has passed
// since the last one. It returns the first persistent write error, which
// callers may ignore: a dead telemetry stream must never fail the run it
// observes.
func (s *Sampler) Poll(now des.Time) error {
	if s == nil || now < s.next {
		return nil
	}
	return s.Flush(now)
}

// Flush unconditionally emits a snapshot stamped with virtual time now.
func (s *Sampler) Flush(now des.Time) error {
	if s == nil {
		return nil
	}
	s.next = now + s.period
	var buf []byte
	if s.getBuf != nil {
		buf = s.getBuf(SnapshotBlockSize)
	}
	buf = s.reg.EncodeSnapshot(buf, s.seq, int64(now), s.source)
	s.seq++
	if err := s.w.Write(buf, int64(len(buf))); err != nil {
		if s.err == nil {
			s.err = err
		}
		return err
	}
	return nil
}

// Samples reports how many snapshots have been emitted.
func (s *Sampler) Samples() uint64 {
	if s == nil {
		return 0
	}
	return s.seq
}

// Err returns the first write error the sampler has seen.
func (s *Sampler) Err() error {
	if s == nil {
		return nil
	}
	return s.err
}
