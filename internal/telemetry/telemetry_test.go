package telemetry

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/des"
)

func TestCounterSharded(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.AddShard(w, 1)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != 16000 {
		t.Fatalf("counter = %d, want 16000", got)
	}
	if reg.Counter("c") != c {
		t.Fatal("second lookup returned a different counter")
	}
}

func TestGaugeHighWater(t *testing.T) {
	g := NewRegistry().Gauge("g")
	g.Set(5)
	g.Set(42)
	g.Set(3)
	if g.Value() != 3 || g.Max() != 42 {
		t.Fatalf("gauge value=%d max=%d, want 3/42", g.Value(), g.Max())
	}
	g.Add(-10)
	if g.Value() != -7 || g.Max() != 42 {
		t.Fatalf("after Add: value=%d max=%d, want -7/42", g.Value(), g.Max())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewRegistry().Histogram("h", []int64{10, 100})
	for _, v := range []int64{5, 10, 11, 100, 1000} {
		h.Observe(v)
	}
	want := []int64{2, 2, 1}
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if h.Count() != 5 || h.Sum() != 1126 {
		t.Fatalf("count=%d sum=%d, want 5/1126", h.Count(), h.Sum())
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering gauge over counter name")
		}
	}()
	reg.Gauge("x")
}

func TestNilInstrumentsNoOp(t *testing.T) {
	var reg *Registry
	c := reg.Counter("c")
	g := reg.Gauge("g")
	h := reg.Histogram("h", LatencyBounds)
	c.Add(1)
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments should read zero")
	}
	reg.GaugeFunc("f", func() int64 { return 1 })
	if reg.Len() != 0 {
		t.Fatal("nil registry should report zero instruments")
	}
	if buf := reg.EncodeSnapshot(nil, 0, 0, 0); buf != nil {
		t.Fatal("nil registry EncodeSnapshot should return input")
	}
	// Nil component bundles and sampler.
	NewStreamMetrics(nil).OnWrite(1)
	NewNetMetrics(nil).OnTransfer(1, 1)
	NewSinkMetrics(nil).OnFlush(1, 1)
	NewBoardMetrics(nil).OnJob(0)
	if NewBoardMetrics(nil).KSLatency("x") != nil {
		t.Fatal("nil board metrics should yield nil histogram")
	}
	NewServiceMetrics(nil).OnJob(1, 1)
	s := NewSampler(nil, nil, time.Millisecond, 0)
	if s != nil {
		t.Fatal("nil registry should yield nil sampler")
	}
	if err := s.Poll(0); err != nil {
		t.Fatal("nil sampler Poll should return nil")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a").Add(7)
	g := reg.Gauge("b")
	g.Set(9)
	g.Set(2)
	h := reg.Histogram("lat", []int64{10, 100})
	h.Observe(5)
	h.Observe(500)
	reg.GaugeFunc("pool", func() int64 { return 11 })

	buf := reg.EncodeSnapshot(nil, 3, 12345, 2)
	s, err := DecodeSnapshot(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if s.Seq != 3 || s.VirtualNs != 12345 || s.Source != 2 {
		t.Fatalf("header = %+v", s)
	}
	if s.WallNs == 0 {
		t.Fatal("wall timestamp missing")
	}
	if len(s.Metrics) != 4 {
		t.Fatalf("metrics = %d, want 4", len(s.Metrics))
	}
	byName := map[string]MetricSample{}
	for _, m := range s.Metrics {
		byName[m.Name] = m
	}
	if m := byName["a"]; m.Kind != KindCounter || m.Value != 7 {
		t.Fatalf("counter a = %+v", m)
	}
	if m := byName["b"]; m.Kind != KindGauge || m.Value != 2 || m.Max != 9 {
		t.Fatalf("gauge b = %+v", m)
	}
	if m := byName["pool"]; m.Kind != KindGauge || m.Value != 11 {
		t.Fatalf("func gauge pool = %+v", m)
	}
	m := byName["lat"]
	if m.Kind != KindHistogram || m.Value != 2 || m.Sum != 505 {
		t.Fatalf("histogram lat = %+v", m)
	}
	if len(m.Bounds) != 2 || len(m.Counts) != 3 || m.Counts[0] != 1 || m.Counts[2] != 1 {
		t.Fatalf("histogram buckets = %+v", m)
	}

	// Host-side Snapshot agrees with the wire form.
	direct := reg.Snapshot(3, 12345, 2)
	if len(direct.Metrics) != len(s.Metrics) {
		t.Fatalf("direct snapshot metrics = %d", len(direct.Metrics))
	}
}

func TestDecodeSnapshotTruncated(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a").Add(1)
	reg.Histogram("h", []int64{1, 2}).Observe(1)
	buf := reg.EncodeSnapshot(nil, 0, 0, 0)
	if _, err := DecodeSnapshot(buf); err != nil {
		t.Fatalf("full buffer should decode: %v", err)
	}
	for n := 0; n < len(buf); n++ {
		if _, err := DecodeSnapshot(buf[:n]); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", n, len(buf))
		}
	}
	bad := append([]byte(nil), buf...)
	bad[0] ^= 0xff
	if _, err := DecodeSnapshot(bad); err == nil {
		t.Fatal("corrupt magic decoded without error")
	}
}

func TestAccumulatorSeries(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	g := reg.Gauge("g")
	h := reg.Histogram("h", []int64{10})

	var acc Accumulator
	for i := 1; i <= 3; i++ {
		c.Add(int64(i))
		g.Set(int64(10 * i))
		h.Observe(int64(i))
		if err := acc.AddEncoded(reg.EncodeSnapshot(nil, uint64(i), int64(i*100), 0)); err != nil {
			t.Fatalf("AddEncoded: %v", err)
		}
	}
	if acc.Snapshots() != 3 {
		t.Fatalf("snapshots = %d, want 3", acc.Snapshots())
	}
	if vs := acc.Values("c"); len(vs) != 3 || vs[2] != 6 {
		t.Fatalf("counter series = %v", vs)
	}
	if vs := acc.Values("g.max"); len(vs) != 3 || vs[2] != 30 {
		t.Fatalf("gauge max series = %v", vs)
	}
	if vs := acc.Values("h.count"); vs[2] != 3 {
		t.Fatalf("histogram count series = %v", vs)
	}
	if vs := acc.Values("h.mean"); vs[2] != 2 {
		t.Fatalf("histogram mean series = %v", vs)
	}
	pts := acc.Points("c")
	if pts[1].VirtualNs != 200 {
		t.Fatalf("virtual timestamps = %+v", pts)
	}
	if acc.Values("missing") != nil {
		t.Fatal("unknown series should be nil")
	}

	sum := acc.Summary()
	if sum.Snapshots != 3 || len(sum.Metrics) == 0 {
		t.Fatalf("summary = %+v", sum)
	}
	var found bool
	for _, m := range sum.Metrics {
		if m.Name == "c" {
			found = true
			if m.Last != 6 || m.Max != 6 || m.Samples != 3 || m.Mean != 10.0/3.0 {
				t.Fatalf("summary for c = %+v", m)
			}
		}
	}
	if !found {
		t.Fatal("summary missing series c")
	}
}

func TestAccumulatorReordersByVirtualTime(t *testing.T) {
	// Snapshots reach the accumulator through the blackboard's concurrent
	// worker pool, so they can arrive out of order; the series must come
	// out sorted by virtual time regardless.
	reg := NewRegistry()
	c := reg.Counter("c")

	snaps := make([]*Snapshot, 3)
	for i := range snaps {
		c.Add(1)
		snaps[i] = reg.Snapshot(uint64(i), int64((i+1)*100), 0)
	}
	var acc Accumulator
	for _, i := range []int{1, 2, 0} { // swapped arrival
		acc.AddSnapshot(snaps[i])
	}
	pts := acc.Points("c")
	if len(pts) != 3 {
		t.Fatalf("points = %d, want 3", len(pts))
	}
	for i, want := range []int64{100, 200, 300} {
		if pts[i].VirtualNs != want {
			t.Fatalf("points out of virtual order: %+v", pts)
		}
	}
	if vs := acc.Values("c"); vs[0] != 1 || vs[1] != 2 || vs[2] != 3 {
		t.Fatalf("values = %v, want monotone counter", vs)
	}
}

// captureWriter records snapshot writes for sampler tests.
type captureWriter struct {
	bufs [][]byte
	err  error
}

func (w *captureWriter) Write(payload []byte, size int64) error {
	if w.err != nil {
		return w.err
	}
	w.bufs = append(w.bufs, append([]byte(nil), payload[:size]...))
	return nil
}

func TestSamplerCadence(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	w := &captureWriter{}
	s := NewSampler(reg, w, time.Millisecond, 4)
	for now := des.Time(0); now < des.Time(5*time.Millisecond); now += des.Time(100 * time.Microsecond) {
		c.Add(1)
		if err := s.Poll(now); err != nil {
			t.Fatalf("Poll: %v", err)
		}
	}
	if s.Samples() != 5 {
		t.Fatalf("samples = %d, want 5", s.Samples())
	}
	var acc Accumulator
	for _, b := range w.bufs {
		if err := acc.AddEncoded(b); err != nil {
			t.Fatalf("decode sampled snapshot: %v", err)
		}
	}
	last := acc.Points("c")
	if len(last) != 5 || last[4].Value <= last[0].Value {
		t.Fatalf("sampled counter series = %+v", last)
	}
	for i, p := range last {
		if i > 0 && p.VirtualNs <= last[i-1].VirtualNs {
			t.Fatalf("virtual time not increasing: %+v", last)
		}
	}
	// Source rank rides along.
	snap, err := DecodeSnapshot(w.bufs[0])
	if err != nil || snap.Source != 4 {
		t.Fatalf("source = %d err=%v, want 4", snap.Source, err)
	}
}

func TestSamplerBufferFuncAndError(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Add(1)
	w := &captureWriter{}
	s := NewSampler(reg, w, time.Millisecond, 0)
	var asked int
	s.SetBufferFunc(func(n int) []byte {
		asked = n
		return make([]byte, 0, n)
	})
	if err := s.Flush(0); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if asked != SnapshotBlockSize {
		t.Fatalf("buffer hint = %d, want %d", asked, SnapshotBlockSize)
	}
	w.err = errors.New("stream down")
	if err := s.Flush(des.Time(time.Second)); err == nil {
		t.Fatal("expected write error")
	}
	if s.Err() == nil || !strings.Contains(s.Err().Error(), "stream down") {
		t.Fatalf("sticky error = %v", s.Err())
	}
}
