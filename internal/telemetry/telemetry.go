// Package telemetry is the coupling stack's self-observation subsystem:
// the engine meta-profiles itself through the same mechanism it offers to
// applications. A Registry holds allocation-free sharded counters, gauges
// and fixed-bucket histograms; a Sampler periodically packs the registry
// into fixed-layout binary meta-events carrying dual timestamps (DES
// virtual time and wall clock) and writes them to a dedicated VMPI stream
// channel, where the analysis side unpacks them into per-component time
// series — the paper's "performance data as events over the interconnect"
// thesis, applied to the measurement infrastructure itself.
//
// Every handle in this package is nil-safe: methods on a nil *Registry,
// *Counter, *Gauge, *Histogram, *Sampler or component bundle are no-ops
// that perform zero allocations, so disabled telemetry costs one nil check
// per instrumentation point and nothing else. Updates use atomics
// throughout, because instruments are written from both simulation context
// (streams, NIC model) and real OS threads (blackboard workers, the
// service front-end) while a sampler reads them live.
package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Shards is the fixed shard count of a Counter. Writers that update the
// same logical counter from many ranks or workers spread over the shards
// (pick one with Counter.AddShard or a bundle's Shard method); readers sum
// them at snapshot time. Power of two so shard selection is a mask.
const Shards = 8

// cell is one padded counter shard: 64 bytes so adjacent shards never
// share a cache line under concurrent writers.
type cell struct {
	v atomic.Int64
	_ [56]byte
}

// Kind discriminates the instrument types in snapshots.
type Kind uint8

// Instrument kinds.
const (
	// KindCounter is a monotonically accumulating sum.
	KindCounter Kind = iota
	// KindGauge is a last-value instrument with a high-water mark.
	KindGauge
	// KindHistogram is a fixed-bucket distribution with count and sum.
	KindHistogram
)

// String names a kind for reports.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Counter is an allocation-free sharded accumulator.
type Counter struct {
	name  string
	cells [Shards]cell
}

// Add accumulates d on shard 0 (single-writer call sites).
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.cells[0].v.Add(d)
}

// AddShard accumulates d on the given shard (reduced contention for
// multi-writer call sites; the shard index is masked into range).
func (c *Counter) AddShard(shard int, d int64) {
	if c == nil {
		return
	}
	c.cells[shard&(Shards-1)].v.Add(d)
}

// Value sums the shards.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var sum int64
	for i := range c.cells {
		sum += c.cells[i].v.Load()
	}
	return sum
}

// Name returns the counter's registered name ("" on nil).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is a last-value instrument that also tracks its high-water mark,
// so a snapshot taken at a quiet instant still reveals the peak between
// samples (e.g. stream credits in flight).
type Gauge struct {
	name string
	v    atomic.Int64
	max  atomic.Int64
}

// Set records the current value and raises the high-water mark.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Add adjusts the current value by d and raises the high-water mark.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	v := g.v.Add(d)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the last recorded value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the high-water mark.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// Name returns the gauge's registered name ("" on nil).
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Histogram is a fixed-bucket distribution: bucket i counts observations
// v <= bounds[i], the last bucket is unbounded. No maps, no growth — an
// Observe is a bounded scan plus three atomic adds.
type Histogram struct {
	name   string
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1
	count  atomic.Int64
	sum    atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bounds returns the bucket upper bounds (shared storage; do not mutate).
func (h *Histogram) Bounds() []int64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// BucketCounts copies the per-bucket counts (len(Bounds())+1 entries, the
// last one unbounded).
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Name returns the histogram's registered name ("" on nil).
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// LatencyBounds is the default bucket layout for latency histograms, in
// nanoseconds: 1 µs, 10 µs, 100 µs, 1 ms, 10 ms, 100 ms, 1 s.
var LatencyBounds = []int64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}

// metric is the registry's common view of one instrument.
type metric interface {
	metricName() string
	kind() Kind
	// encode appends the instrument's snapshot record body (everything
	// after name and kind) to buf.
	encode(buf []byte) []byte
	// sample builds the decoded form directly (host-side Snapshot()).
	sample() MetricSample
}

func (c *Counter) metricName() string { return c.name }
func (c *Counter) kind() Kind         { return KindCounter }

func (g *Gauge) metricName() string { return g.name }
func (g *Gauge) kind() Kind         { return KindGauge }

func (h *Histogram) metricName() string { return h.name }
func (h *Histogram) kind() Kind         { return KindHistogram }

// funcGauge reads an external source at snapshot time (e.g. the global
// vmpi block-pool counters, which cannot live in a per-run registry).
type funcGauge struct {
	name string
	fn   func() int64
}

func (f *funcGauge) metricName() string { return f.name }
func (f *funcGauge) kind() Kind         { return KindGauge }

// Registry is a named set of instruments. The zero value is not usable;
// create with NewRegistry. A nil *Registry is the disabled state: every
// lookup returns a nil instrument whose methods no-op.
type Registry struct {
	mu     sync.Mutex
	order  []metric
	byName map[string]metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]metric)}
}

// lookup returns the registered metric under name, or registers the one
// built by mk. A name registered under a different instrument kind panics:
// that is a wiring bug, not a runtime condition.
func (r *Registry) lookup(name string, k Kind, mk func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind() != k {
			panic(fmt.Sprintf("telemetry: %q already registered as a %s", name, m.kind()))
		}
		return m
	}
	m := mk()
	r.byName[name] = m
	r.order = append(r.order, m)
	return m
}

// Counter returns (registering on first use) the named counter. Nil
// registry → nil counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindCounter, func() metric { return &Counter{name: name} }).(*Counter)
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindGauge, func() metric { return &Gauge{name: name} }).(*Gauge)
}

// Histogram returns (registering on first use) the named histogram with
// the given ascending bucket upper bounds (the last bucket is unbounded).
// The bounds of an already-registered histogram win.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindHistogram, func() metric {
		b := append([]int64(nil), bounds...)
		for i := 1; i < len(b); i++ {
			if b[i] <= b[i-1] {
				panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending", name))
			}
		}
		return &Histogram{name: name, bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	}).(*Histogram)
}

// GaugeFunc registers a callback-backed gauge sampled at snapshot time.
// Use it to surface process-global state (like the shared vmpi block pool)
// that cannot be written through a per-run handle.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.lookup(name, KindGauge, func() metric { return &funcGauge{name: name, fn: fn} })
}

// Len returns the number of registered instruments.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.order)
}
