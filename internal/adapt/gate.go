// Package adapt closes the loop between the engine's self-telemetry and
// its runtime knobs: a controller knowledge source watches engine-health
// meta-events on the blackboard and, under overload, retunes the transport
// (credit windows, pack format, tree flush cadence) before degrading
// measurement itself through an admission gate that sheds event classes
// with counted, bounded loss. Shedding is never silent: every dropped
// event is counted by class, and the resulting completeness bound travels
// through the partial profiles into the final report.
package adapt

import (
	"sync/atomic"

	"repro/internal/trace"
)

// Gate is the recorder-path admission tier: a per-event-class sampling
// filter cheap enough to sit in front of every recorded event. Intervals
// are atomics so the controller (running on blackboard worker threads)
// can retune a gate while its rank records in simulation context; Admit
// itself is deterministic counter-based 1-in-n sampling, so a fixed
// schedule sheds a reproducible event subset.
//
// A nil Gate admits everything; an open interval (0 or 1) admits the
// class, n > 1 admits every n-th event of the class, and a negative
// interval sheds the whole class.
type Gate struct {
	interval [trace.KindCount]atomic.Int32
	seen     [trace.KindCount]atomic.Int64
	kept     [trace.KindCount]atomic.Int64
	shed     [trace.KindCount]atomic.Int64
}

// NewGate returns a gate admitting every class.
func NewGate() *Gate { return &Gate{} }

// Admit decides whether an event of the given class passes the gate, and
// counts it either way. Safe to call concurrently with SetInterval.
func (g *Gate) Admit(k trace.Kind) bool {
	if g == nil {
		return true
	}
	if k <= trace.KindInvalid || int(k) >= trace.KindCount {
		return true // unknown class: never shed what we cannot account for
	}
	iv := g.interval[k].Load()
	switch {
	case iv < 0:
		g.shed[k].Add(1)
		return false
	case iv <= 1:
		g.kept[k].Add(1)
		return true
	}
	if (g.seen[k].Add(1)-1)%int64(iv) == 0 {
		g.kept[k].Add(1)
		return true
	}
	g.shed[k].Add(1)
	return false
}

// SetInterval sets the class's sampling interval: 0 or 1 admits all,
// n > 1 admits one event in n, negative sheds all.
func (g *Gate) SetInterval(k trace.Kind, n int32) {
	if g == nil || k <= trace.KindInvalid || int(k) >= trace.KindCount {
		return
	}
	g.interval[k].Store(n)
}

// Interval returns the class's current sampling interval.
func (g *Gate) Interval(k trace.Kind) int32 {
	if g == nil || k <= trace.KindInvalid || int(k) >= trace.KindCount {
		return 0
	}
	return g.interval[k].Load()
}

// Shed returns how many events of the class have been shed.
func (g *Gate) Shed(k trace.Kind) int64 {
	if g == nil || k <= trace.KindInvalid || int(k) >= trace.KindCount {
		return 0
	}
	return g.shed[k].Load()
}

// Kept returns how many events of the class have been admitted.
func (g *Gate) Kept(k trace.Kind) int64 {
	if g == nil || k <= trace.KindInvalid || int(k) >= trace.KindCount {
		return 0
	}
	return g.kept[k].Load()
}

// TotalShed returns the gate's total shed count across classes.
func (g *Gate) TotalShed() int64 {
	if g == nil {
		return 0
	}
	var n int64
	for k := range g.shed {
		n += g.shed[k].Load()
	}
	return n
}

// TotalKept returns the gate's total admitted count across classes.
func (g *Gate) TotalKept() int64 {
	if g == nil {
		return 0
	}
	var n int64
	for k := range g.kept {
		n += g.kept[k].Load()
	}
	return n
}

// Entries snapshots the gate's per-class ledger (classes with any
// traffic), in kind order.
func (g *Gate) Entries() []trace.AuditEntry {
	if g == nil {
		return nil
	}
	var out []trace.AuditEntry
	for _, k := range trace.Kinds() {
		shed, kept := g.shed[k].Load(), g.kept[k].Load()
		if shed == 0 && kept == 0 {
			continue
		}
		out = append(out, trace.AuditEntry{Kind: k, Shed: shed, Kept: kept})
	}
	return out
}

// AuditPack encodes the gate's shed ledger as a trace audit pack, or nil
// when nothing was shed. It satisfies the recorder's audit source, so a
// finalizing rank ships its loss accounting down the data stream it
// applies to.
func (g *Gate) AuditPack(appID uint32, srcRank int32) []byte {
	if g == nil {
		return nil
	}
	return trace.EncodeAuditPack(appID, srcRank, g.Entries())
}
