package adapt

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blackboard"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// WindowSetter is the slice of vmpi.Stream the controller actuates: a
// goroutine-safe request to retarget the writer's credit window.
type WindowSetter interface {
	RequestWindow(na int)
}

// Config tunes the controller's thresholds. The zero value selects the
// defaults noted on each field.
type Config struct {
	// StallDelta is the per-snapshot increase of stream.write_stalls that
	// counts as overload (default 1: any new back-pressure stall).
	StallDelta int64
	// PanicStalls is the per-snapshot stall increase that jumps straight
	// to the maximum level instead of stepping (default 32).
	PanicStalls int64
	// BacklogHighNs is the NIC backlog gauge level treated as overload on
	// its own, stalls or not (default 50ms of virtual time).
	BacklogHighNs int64
	// BacklogHighBytes is the stream byte backlog — bytes_written minus
	// bytes_read across every instrumented stream, i.e. the volume queued
	// between the recorders and the analyzers — treated as overload
	// (default 256 KiB). Relaxing requires the backlog to drain below
	// half this level, so the controller holds its level while the
	// analyzers chew through queued packs instead of oscillating.
	BacklogHighBytes int64
	// CalmSnapshots is how many consecutive calm snapshots must pass
	// before the controller relaxes one level (default 2).
	CalmSnapshots int
	// BaseWindow is the credit window restored at level 0 (default 3, the
	// paper's NA).
	BaseWindow int
	// MaxWindow is the credit window requested under overload (default 8).
	MaxWindow int
	// BaseFlushPacks is the tree partial-flush cadence at level 0
	// (default 0: leave the tree's static cadence untouched at level 0).
	BaseFlushPacks int32
	// MaxLevel caps escalation (default 4, the full ladder).
	MaxLevel int
}

func (c *Config) defaults() {
	if c.StallDelta <= 0 {
		c.StallDelta = 1
	}
	if c.PanicStalls <= 0 {
		c.PanicStalls = 32
	}
	if c.BacklogHighNs <= 0 {
		c.BacklogHighNs = int64(50 * time.Millisecond)
	}
	if c.BacklogHighBytes <= 0 {
		c.BacklogHighBytes = 256 << 10
	}
	if c.CalmSnapshots <= 0 {
		c.CalmSnapshots = 2
	}
	if c.BaseWindow <= 0 {
		c.BaseWindow = 3
	}
	if c.MaxWindow <= 0 {
		c.MaxWindow = 8
	}
	if c.MaxLevel <= 0 || c.MaxLevel > maxLevel {
		c.MaxLevel = maxLevel
	}
}

// maxLevel is the top of the escalation ladder.
const maxLevel = 4

// classPlan is one level's gate programming.
type classPlan struct {
	async int32 // Isend/Irecv/Wait/Waitall/Iprobe: bookkeeping, shed first
	p2p   int32 // Send/Recv/Sendrecv: the measurements themselves
	posix int32 // POSIX I/O events
}

// ladder is the escalation policy, indexed by level. Collectives and
// Init/Finalize are never shed: they are rare, and they anchor the
// profile's structure (phase boundaries, barrier wait analysis).
//
//	L0  nominal: admit everything, static transport.
//	L1  transport only: wider credit window, compact v2 packs, coarser
//	    tree flush cadence — no measurement loss yet.
//	L2  sample async bookkeeping 1-in-8.
//	L3  async 1-in-64, point-to-point and POSIX 1-in-8.
//	L4  drop async entirely, point-to-point and POSIX 1-in-64.
var ladder = [maxLevel + 1]classPlan{
	{async: 1, p2p: 1, posix: 1},
	{async: 1, p2p: 1, posix: 1},
	{async: 8, p2p: 1, posix: 1},
	{async: 64, p2p: 8, posix: 8},
	{async: -1, p2p: 64, posix: 64},
}

// Controller is the closed-loop overload governor. It registers as a
// blackboard knowledge source sensitive to engine-health meta-events
// (the same channel-9 snapshots the engine-health chapter renders), so
// its sensor input arrives through the real analysis machinery; its
// decisions land in atomics that the instrumented ranks' hot paths read
// at their next safe point.
type Controller struct {
	cfg Config
	tel *telemetry.ControllerMetrics

	mu      sync.Mutex
	gates   []*Gate
	windows []WindowSetter
	level   int
	calm    int
	seeded  bool
	// Previous snapshot's counter values, for rate-of-change signals.
	prevStalls float64

	levelA      atomic.Int32
	decisions   atomic.Int64
	escalations atomic.Int64
	packVersion atomic.Int32
	flushEvery  atomic.Int32
	maxSeen     atomic.Int32
}

// NewController builds a controller with the given thresholds and, when
// bb is non-nil, registers its knowledge source ("adapt-controller") on
// the board. tel may be nil.
func NewController(bb *blackboard.Blackboard, cfg Config, tel *telemetry.ControllerMetrics) (*Controller, error) {
	cfg.defaults()
	c := &Controller{cfg: cfg, tel: tel}
	c.packVersion.Store(int32(trace.PackV1))
	c.flushEvery.Store(cfg.BaseFlushPacks)
	if bb != nil {
		metaT := blackboard.TypeID("", "meta")
		err := bb.Register(blackboard.KS{
			Name:          "adapt-controller",
			Sensitivities: []blackboard.Type{metaT},
			Op: func(_ *blackboard.Blackboard, in []*blackboard.Entry) {
				buf, ok := in[0].Payload.([]byte)
				if !ok {
					return
				}
				s, err := telemetry.DecodeSnapshot(buf)
				if err != nil {
					return // a truncated snapshot must not kill the loop
				}
				c.Observe(s)
			},
		})
		if err != nil {
			return nil, err
		}
	}
	return c, nil
}

// NewGate creates an admission gate governed by this controller,
// pre-programmed with the current level's plan. One gate per recorder
// keeps the shed ledgers per-rank, so audit packs merge without double
// counting.
func (c *Controller) NewGate() *Gate {
	g := NewGate()
	c.mu.Lock()
	c.gates = append(c.gates, g)
	c.program(g, ladder[c.level])
	c.mu.Unlock()
	return g
}

// AddStream registers a stream whose credit window the controller may
// retarget.
func (c *Controller) AddStream(w WindowSetter) {
	if w == nil {
		return
	}
	c.mu.Lock()
	c.windows = append(c.windows, w)
	w.RequestWindow(c.windowFor(c.level))
	c.mu.Unlock()
}

// Observe feeds one engine-health snapshot into the control loop. It is
// normally invoked by the controller's knowledge source, but tests (and
// hosts without a board) may call it directly.
func (c *Controller) Observe(s *telemetry.Snapshot) {
	if s == nil {
		return
	}
	var stalls, bytesW, bytesR, backlogNs float64
	for i := range s.Metrics {
		switch m := &s.Metrics[i]; m.Name {
		case "stream.write_stalls":
			stalls = float64(m.Value)
		case "stream.bytes_written":
			bytesW = float64(m.Value)
		case "stream.bytes_read":
			bytesR = float64(m.Value)
		case "net.nic_backlog_ns":
			backlogNs = float64(m.Max)
		}
	}
	if s.WallNs > 0 {
		c.tel.SnapshotLag(time.Now().UnixNano() - s.WallNs)
	}
	backlogBytes := int64(bytesW - bytesR)
	if backlogBytes > 0 {
		c.tel.Backlog(backlogBytes)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	dStalls := int64(stalls - c.prevStalls)
	c.prevStalls = stalls
	if !c.seeded {
		// First snapshot only seeds the counter baselines: its "delta" is
		// the absolute count since boot, not a rate.
		c.seeded = true
		c.decide(c.level)
		return
	}
	switch {
	case dStalls >= c.cfg.PanicStalls || backlogBytes >= 2*c.cfg.BacklogHighBytes:
		// A stall burst, or a queue already twice the overload line:
		// stepping one level at a time would let the backlog compound for
		// several more control periods. Jump to the top of the ladder.
		c.calm = 0
		c.decide(c.cfg.MaxLevel)
	case dStalls >= c.cfg.StallDelta ||
		backlogNs >= float64(c.cfg.BacklogHighNs) ||
		backlogBytes >= c.cfg.BacklogHighBytes:
		c.calm = 0
		c.decide(c.level + 1)
	case backlogBytes > c.cfg.BacklogHighBytes/4:
		// Hysteresis band: no new pressure, but the queue has not drained
		// deep either. Hold the level rather than relax into a fresh
		// stall — relaxing is only safe once the analyzers have real
		// headroom, not the moment they dip under the overload line.
		c.calm = 0
		c.decide(c.level)
	default:
		c.calm++
		if c.calm >= c.cfg.CalmSnapshots && c.level > 0 {
			c.calm = 0
			c.decide(c.level - 1)
		} else {
			c.decide(c.level)
		}
	}
}

// decide moves to the given level (clamped) and applies its plan to every
// actuator. Caller holds c.mu.
func (c *Controller) decide(level int) {
	if level < 0 {
		level = 0
	}
	if level > c.cfg.MaxLevel {
		level = c.cfg.MaxLevel
	}
	if level > c.level {
		c.escalations.Add(1)
		c.tel.OnEscalate()
	} else if level < c.level {
		c.tel.OnRelax()
	}
	c.level = level
	c.levelA.Store(int32(level))
	if int32(level) > c.maxSeen.Load() {
		c.maxSeen.Store(int32(level))
	}
	c.decisions.Add(1)
	c.tel.OnDecision(level)

	plan := ladder[level]
	for _, g := range c.gates {
		c.program(g, plan)
	}
	win := c.windowFor(level)
	for _, w := range c.windows {
		w.RequestWindow(win)
	}
	if level >= 1 {
		// Byte-bound overload: the compact columns buy wire bytes (DESIGN
		// §9's v2-wins regime; the v2-loses cases — tiny packs, high
		// entropy — do not arise here because overload implies full packs
		// of regular traffic). Deeper overload (level >= 2) moves to the
		// v3 per-stream dictionary: a sustained overloaded stream is long
		// by definition, exactly the regime where amortizing the
		// dictionary across packs wins (DESIGN §13); v2 stays the level-1
		// choice so a brief spike never pays v3's short-stream overhead.
		// Coarser flush cadence cuts the partial traffic competing with
		// data for the analyzer.
		if level >= 2 {
			c.packVersion.Store(int32(trace.PackV3))
		} else {
			c.packVersion.Store(int32(trace.PackV2))
		}
		base := c.cfg.BaseFlushPacks
		if base <= 0 {
			base = 4
		}
		mult := int32(4)
		if level >= 2 {
			mult = 8
		}
		c.flushEvery.Store(base * mult)
	} else {
		c.packVersion.Store(int32(trace.PackV1))
		c.flushEvery.Store(c.cfg.BaseFlushPacks)
	}
}

func (c *Controller) windowFor(level int) int {
	if level >= 1 {
		return c.cfg.MaxWindow
	}
	return c.cfg.BaseWindow
}

// program applies a level plan to one gate.
func (c *Controller) program(g *Gate, p classPlan) {
	for _, k := range trace.Kinds() {
		switch {
		case k == trace.KindInit || k == trace.KindFinalize || k.IsCollective():
			g.SetInterval(k, 1)
		case k == trace.KindIsend || k == trace.KindIrecv || k.IsWait() || k == trace.KindProbe:
			g.SetInterval(k, p.async)
		case k.IsPosix():
			g.SetInterval(k, p.posix)
		default:
			g.SetInterval(k, p.p2p)
		}
	}
}

// Level returns the current escalation level.
func (c *Controller) Level() int { return int(c.levelA.Load()) }

// MaxLevelSeen returns the highest level the run reached.
func (c *Controller) MaxLevelSeen() int { return int(c.maxSeen.Load()) }

// Decisions returns how many control decisions have been taken.
func (c *Controller) Decisions() int64 { return c.decisions.Load() }

// Escalations returns how many decisions raised the level.
func (c *Controller) Escalations() int64 { return c.escalations.Load() }

// PackVersion returns the pack wire format the recorders should build
// next (consulted at flush boundaries, where swapping is safe).
func (c *Controller) PackVersion() int { return int(c.packVersion.Load()) }

// FlushEvery returns the tree partial-flush cadence in packs, or 0 to
// keep the tree's static cadence.
func (c *Controller) FlushEvery() int { return int(c.flushEvery.Load()) }

// TotalShed sums shed events across every gate the controller governs.
func (c *Controller) TotalShed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, g := range c.gates {
		n += g.TotalShed()
	}
	return n
}
