package adapt

import (
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/trace"
)

func TestNilGateAdmitsEverything(t *testing.T) {
	var g *Gate
	if !g.Admit(trace.KindSend) {
		t.Fatal("nil gate shed an event")
	}
	if g.TotalShed() != 0 || g.TotalKept() != 0 {
		t.Fatal("nil gate counted")
	}
	if g.Entries() != nil || g.AuditPack(1, 0) != nil {
		t.Fatal("nil gate produced a ledger")
	}
	g.SetInterval(trace.KindSend, -1) // must not panic
	if g.Interval(trace.KindSend) != 0 || g.Shed(trace.KindSend) != 0 || g.Kept(trace.KindSend) != 0 {
		t.Fatal("nil gate accessors nonzero")
	}
}

func TestGateIntervalSemantics(t *testing.T) {
	g := NewGate()
	// Zero interval (fresh gate) admits all.
	for i := 0; i < 5; i++ {
		if !g.Admit(trace.KindSend) {
			t.Fatal("open gate shed")
		}
	}
	if g.Kept(trace.KindSend) != 5 || g.Shed(trace.KindSend) != 0 {
		t.Fatalf("kept=%d shed=%d, want 5/0", g.Kept(trace.KindSend), g.Shed(trace.KindSend))
	}

	// 1-in-4 sampling admits exactly the first of every four.
	g.SetInterval(trace.KindRecv, 4)
	var pattern []bool
	for i := 0; i < 12; i++ {
		pattern = append(pattern, g.Admit(trace.KindRecv))
	}
	for i, admitted := range pattern {
		if want := i%4 == 0; admitted != want {
			t.Fatalf("event %d: admitted=%v, want %v", i, admitted, want)
		}
	}
	if g.Kept(trace.KindRecv) != 3 || g.Shed(trace.KindRecv) != 9 {
		t.Fatalf("kept=%d shed=%d, want 3/9", g.Kept(trace.KindRecv), g.Shed(trace.KindRecv))
	}

	// Negative interval sheds the whole class.
	g.SetInterval(trace.KindIsend, -1)
	for i := 0; i < 7; i++ {
		if g.Admit(trace.KindIsend) {
			t.Fatal("closed class admitted")
		}
	}
	if g.Shed(trace.KindIsend) != 7 {
		t.Fatalf("shed=%d, want 7", g.Shed(trace.KindIsend))
	}
	if g.TotalShed() != 9+7 || g.TotalKept() != 5+3 {
		t.Fatalf("totals shed=%d kept=%d, want 16/8", g.TotalShed(), g.TotalKept())
	}
}

func TestGateDeterministicSchedule(t *testing.T) {
	// Two gates programmed identically shed the identical event subset:
	// the sampling is counter-based, not random.
	a, b := NewGate(), NewGate()
	a.SetInterval(trace.KindSend, 8)
	b.SetInterval(trace.KindSend, 8)
	for i := 0; i < 100; i++ {
		if a.Admit(trace.KindSend) != b.Admit(trace.KindSend) {
			t.Fatalf("gates diverged at event %d", i)
		}
	}
}

func TestGateUnknownKind(t *testing.T) {
	g := NewGate()
	g.SetInterval(trace.KindInvalid, -1)
	g.SetInterval(trace.Kind(trace.KindCount), -1)
	if !g.Admit(trace.KindInvalid) || !g.Admit(trace.Kind(trace.KindCount+7)) {
		t.Fatal("unknown class shed: loss would be unaccountable")
	}
	if g.TotalShed() != 0 || g.TotalKept() != 0 {
		t.Fatal("unknown class counted")
	}
	if g.Interval(trace.Kind(trace.KindCount)) != 0 {
		t.Fatal("out-of-range interval stored")
	}
}

func TestGateAuditRoundTrip(t *testing.T) {
	g := NewGate()
	g.SetInterval(trace.KindSend, 2)
	g.SetInterval(trace.KindAllreduce, 1)
	for i := 0; i < 10; i++ {
		g.Admit(trace.KindSend)
		g.Admit(trace.KindAllreduce)
	}
	entries := g.Entries()
	if len(entries) != 2 {
		t.Fatalf("entries=%d, want 2 trafficked classes", len(entries))
	}

	buf := g.AuditPack(3, 7)
	if buf == nil {
		t.Fatal("no audit pack despite shed traffic")
	}
	h, decoded, err := trace.DecodeAuditPack(buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.AppID != 3 || h.SrcRank != 7 || h.Version != trace.PackAudit {
		t.Fatalf("header %+v", h)
	}
	// Only classes with loss ride the wire; fully-kept classes cost nothing.
	if len(decoded) != 1 || decoded[0].Kind != trace.KindSend {
		t.Fatalf("decoded %+v, want only the sampled class", decoded)
	}
	if decoded[0].Shed != 5 || decoded[0].Kept != 5 {
		t.Fatalf("ledger %+v, want 5 shed / 5 kept", decoded[0])
	}

	// A gate that shed nothing ships no audit pack at all.
	clean := NewGate()
	clean.Admit(trace.KindSend)
	if clean.AuditPack(1, 0) != nil {
		t.Fatal("lossless gate produced an audit pack")
	}
}

// TestBoundConservativeProperty is the completeness-bound property test:
// under randomized shed schedules — intervals reprogrammed mid-stream,
// whole classes closed and reopened — plus adversarial downstream loss of
// admitted events, the report's advertised loss bound
// shed/(shed+analyzed) never understates the true loss
// shed/(shed+kept). The gate's conservation invariant (every offered
// event lands in exactly one of kept/shed) is what makes that hold.
func TestBoundConservativeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed6))
	kinds := trace.Kinds()
	for trial := 0; trial < 200; trial++ {
		g := NewGate()
		offered := make(map[trace.Kind]int64)
		events := 500 + rng.Intn(2000)
		for i := 0; i < events; i++ {
			if rng.Intn(50) == 0 {
				// Reprogram a random class mid-stream, like the controller
				// moving levels: open, sampled, or closed.
				k := kinds[rng.Intn(len(kinds))]
				g.SetInterval(k, []int32{-1, 0, 1, 2, 8, 64}[rng.Intn(6)])
			}
			k := kinds[rng.Intn(len(kinds))]
			offered[k]++
			g.Admit(k)
		}

		mod := analysis.NewCompletenessModule()
		mod.AddAudit(g.Entries())
		for _, k := range kinds {
			kept, shed := g.Kept(k), g.Shed(k)
			if kept+shed != offered[k] {
				t.Fatalf("trial %d %s: kept %d + shed %d != offered %d (ledger leak)",
					trial, k, kept, shed, offered[k])
			}
			if shed == 0 {
				continue
			}
			// The analyzers may lose admitted events downstream (crashed
			// aggregators, quarantined streams) but never invent them.
			analyzed := rng.Int63n(kept + 1)
			bound := mod.Bound(k, analyzed)
			trueLoss := float64(shed) / float64(shed+kept)
			if bound < trueLoss-1e-12 {
				t.Fatalf("trial %d %s: advertised bound %.6f < true loss %.6f (kept %d shed %d analyzed %d)",
					trial, k, bound, trueLoss, kept, shed, analyzed)
			}
		}
	}
}
