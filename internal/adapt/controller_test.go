package adapt

import (
	"testing"
	"time"

	"repro/internal/blackboard"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

type fakeWindow struct{ reqs []int }

func (f *fakeWindow) RequestWindow(n int) { f.reqs = append(f.reqs, n) }

func snap(stalls, bytesW, bytesR, backlogNs int64) *telemetry.Snapshot {
	return &telemetry.Snapshot{
		Metrics: []telemetry.MetricSample{
			{Name: "stream.write_stalls", Value: stalls},
			{Name: "stream.bytes_written", Value: bytesW},
			{Name: "stream.bytes_read", Value: bytesR},
			{Name: "net.nic_backlog_ns", Max: backlogNs},
		},
	}
}

func newTestController(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := NewController(nil, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigDefaults(t *testing.T) {
	var cfg Config
	cfg.defaults()
	if cfg.StallDelta != 1 || cfg.PanicStalls != 32 || cfg.CalmSnapshots != 2 {
		t.Fatalf("stall defaults %+v", cfg)
	}
	if cfg.BacklogHighNs != int64(50*time.Millisecond) || cfg.BacklogHighBytes != 256<<10 {
		t.Fatalf("backlog defaults %+v", cfg)
	}
	if cfg.BaseWindow != 3 || cfg.MaxWindow != 8 || cfg.MaxLevel != maxLevel {
		t.Fatalf("window/level defaults %+v", cfg)
	}
	over := Config{MaxLevel: 99}
	over.defaults()
	if over.MaxLevel != maxLevel {
		t.Fatalf("MaxLevel not clamped: %d", over.MaxLevel)
	}
}

func TestControllerEscalatesOnStalls(t *testing.T) {
	c := newTestController(t, Config{})
	g := c.NewGate()
	w := &fakeWindow{}
	c.AddStream(w)
	c.AddStream(nil) // must be ignored
	if got := w.reqs; len(got) != 1 || got[0] != 3 {
		t.Fatalf("initial window requests %v, want [3]", got)
	}
	if c.PackVersion() != trace.PackV1 || c.Level() != 0 {
		t.Fatalf("fresh controller at v%d level %d", c.PackVersion(), c.Level())
	}

	c.Observe(nil)                // ignored
	c.Observe(snap(100, 0, 0, 0)) // seeds baselines: the absolute count is not a delta
	if c.Level() != 0 {
		t.Fatalf("seed snapshot escalated to %d", c.Level())
	}

	// One new stall per snapshot climbs the ladder a level at a time.
	for i, want := range []int{1, 2, 3, 4, 4} {
		c.Observe(snap(int64(101+i), 0, 0, 0))
		if c.Level() != want {
			t.Fatalf("snapshot %d: level %d, want %d", i, c.Level(), want)
		}
	}
	if c.MaxLevelSeen() != 4 || c.Escalations() != 4 {
		t.Fatalf("maxSeen %d escalations %d", c.MaxLevelSeen(), c.Escalations())
	}
	if c.PackVersion() != trace.PackV3 {
		t.Fatalf("deep-overload controller streaming v%d, want the v3 stream dictionary", c.PackVersion())
	}
	if last := w.reqs[len(w.reqs)-1]; last != 8 {
		t.Fatalf("window under overload %d, want 8", last)
	}
	// L4 plan: async classes closed, p2p and POSIX sampled 1-in-64,
	// collectives and Init/Finalize untouched — they anchor the profile.
	if iv := g.Interval(trace.KindIsend); iv != -1 {
		t.Fatalf("async interval %d, want -1", iv)
	}
	if iv := g.Interval(trace.KindSend); iv != 64 {
		t.Fatalf("p2p interval %d, want 64", iv)
	}
	if iv := g.Interval(trace.KindPosixWrite); iv != 64 {
		t.Fatalf("posix interval %d, want 64", iv)
	}
	if iv := g.Interval(trace.KindAllreduce); iv != 1 {
		t.Fatalf("collective interval %d, want 1 (never shed)", iv)
	}
	if iv := g.Interval(trace.KindInit); iv != 1 || g.Interval(trace.KindFinalize) != 1 {
		t.Fatalf("init/finalize sampled (%d)", iv)
	}
}

func TestControllerPanicJumpsToMax(t *testing.T) {
	c := newTestController(t, Config{})
	c.Observe(snap(0, 0, 0, 0)) // seed
	c.Observe(snap(32, 0, 0, 0))
	if c.Level() != 4 {
		t.Fatalf("stall burst reached level %d, want 4", c.Level())
	}
}

func TestControllerBacklogSignals(t *testing.T) {
	cfg := Config{BacklogHighBytes: 1000}
	c := newTestController(t, cfg)
	c.Observe(snap(0, 0, 0, 0)) // seed

	// Byte backlog at the overload line escalates one level.
	c.Observe(snap(0, 1500, 500, 0))
	if c.Level() != 1 {
		t.Fatalf("backlog at line: level %d, want 1", c.Level())
	}
	// Twice the line jumps straight to the top.
	c.Observe(snap(0, 2500, 500, 0))
	if c.Level() != 4 {
		t.Fatalf("2x backlog: level %d, want 4", c.Level())
	}
	// Hysteresis: backlog below the line but above a quarter of it holds
	// the level, regardless of how many snapshots pass.
	for i := 0; i < 10; i++ {
		c.Observe(snap(0, 1000, 500, 0))
	}
	if c.Level() != 4 {
		t.Fatalf("hysteresis band relaxed to %d", c.Level())
	}
	// A drained queue relaxes one level per CalmSnapshots.
	calmed := func() { c.Observe(snap(0, 1000, 900, 0)) }
	for level := 3; level >= 0; level-- {
		calmed()
		calmed()
		if c.Level() != level {
			t.Fatalf("after calm pair: level %d, want %d", c.Level(), level)
		}
	}
	// Fully relaxed: transport knobs restored.
	if c.PackVersion() != trace.PackV1 || c.FlushEvery() != 0 {
		t.Fatalf("relaxed controller kept v%d cadence %d", c.PackVersion(), c.FlushEvery())
	}
}

func TestControllerNICBacklogEscalates(t *testing.T) {
	c := newTestController(t, Config{BacklogHighNs: int64(10 * time.Millisecond)})
	c.Observe(snap(0, 0, 0, 0)) // seed
	c.Observe(snap(0, 0, 0, int64(20*time.Millisecond)))
	if c.Level() != 1 {
		t.Fatalf("NIC backlog: level %d, want 1", c.Level())
	}
}

func TestControllerFlushCadence(t *testing.T) {
	c := newTestController(t, Config{BaseFlushPacks: 2})
	if c.FlushEvery() != 2 {
		t.Fatalf("base cadence %d, want 2", c.FlushEvery())
	}
	c.Observe(snap(0, 0, 0, 0)) // seed
	c.Observe(snap(1, 0, 0, 0)) // L1: base x4
	if c.FlushEvery() != 8 {
		t.Fatalf("L1 cadence %d, want 8", c.FlushEvery())
	}
	c.Observe(snap(2, 0, 0, 0)) // L2: base x8
	if c.FlushEvery() != 16 {
		t.Fatalf("L2 cadence %d, want 16", c.FlushEvery())
	}
}

func TestControllerMaxLevelCap(t *testing.T) {
	c := newTestController(t, Config{MaxLevel: 2})
	c.Observe(snap(0, 0, 0, 0))
	c.Observe(snap(64, 0, 0, 0)) // panic — but capped
	if c.Level() != 2 {
		t.Fatalf("capped controller at level %d, want 2", c.Level())
	}
}

func TestControllerGatesProgrammedLate(t *testing.T) {
	// A gate created after escalation starts under the current plan, and
	// TotalShed aggregates across every gate.
	c := newTestController(t, Config{})
	c.Observe(snap(0, 0, 0, 0))
	c.Observe(snap(32, 0, 0, 0)) // L4
	g := c.NewGate()
	if iv := g.Interval(trace.KindIsend); iv != -1 {
		t.Fatalf("late gate interval %d, want the active plan's -1", iv)
	}
	g2 := c.NewGate()
	g.Admit(trace.KindIsend)
	g2.Admit(trace.KindIsend)
	if c.TotalShed() != 2 {
		t.Fatalf("TotalShed %d, want 2", c.TotalShed())
	}
}

// TestControllerThroughBlackboard drives the control loop the way the
// engine does: snapshots encoded by a real registry, posted as meta
// entries on a real board, decoded by the controller's knowledge source.
func TestControllerThroughBlackboard(t *testing.T) {
	bb := blackboard.New(blackboard.Config{Workers: 2})
	defer bb.Close()

	reg := telemetry.NewRegistry()
	stalls := reg.Counter("stream.write_stalls")

	c, err := NewController(bb, Config{}, telemetry.NewControllerMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	metaT := blackboard.TypeID("", "meta")
	post := func(seq uint64) {
		buf := reg.EncodeSnapshot(nil, seq, int64(seq)*1e6, 0)
		bb.Post(metaT, int64(len(buf)), buf)
		bb.Drain()
	}

	post(1) // seed
	if c.Decisions() != 1 {
		t.Fatalf("decisions %d, want 1 (seed observed)", c.Decisions())
	}
	stalls.Add(5)
	post(2)
	if c.Level() != 1 {
		t.Fatalf("level %d after stall delta through the board, want 1", c.Level())
	}

	// Garbage must not kill the loop: wrong payload type, truncated bytes.
	bb.Post(metaT, 3, "not bytes")
	bb.Post(metaT, 3, []byte{1, 2, 3})
	bb.Drain()
	stalls.Add(5)
	post(3)
	if c.Level() != 2 {
		t.Fatalf("level %d after garbage interleave, want 2", c.Level())
	}

	// Duplicate registration fails cleanly.
	if _, err := NewController(bb, Config{}, nil); err == nil {
		t.Fatal("second controller registered on the same board")
	}
}
