package serviced

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/trace"
)

// This file is the session's bounded ingest worker pool: the serving-side
// face of the analysis package's replica layer. With Options.Workers > 1 a
// session fans its data packs out to that many lanes — writer-sticky
// (src mod workers), so each writer's packs decode in order through its
// own v3 stream decoder — and every lane folds into private per-app
// analysis.Replica state, entirely lock-free. The session's delta only
// learns about the folded events at a flush barrier, run on the
// connection goroutine at every seal (snapshot, diff, close): the seal
// IS the epoch boundary here, so query results are byte-identical to the
// synchronous path's — replica merges are associative-commutative and
// the canonical encoding is content-only.
//
// Pack bytes alias the wire reader's frame buffer, so the connection
// copies them (through a recycling pool) before handing them to a lane.
// Admission gates are per-app atomics, safe to consult lane-side; their
// shed ledgers stay whole-session, folded at close like the synchronous
// path does.

// laneQueueDepth bounds each lane's pack queue; a full queue blocks the
// connection goroutine, which is the natural backpressure (the credit
// window already paces the client's burst size).
const laneQueueDepth = 32

// laneJob is one unit of lane work: either a copied pack to fold, or a
// flush barrier to acknowledge.
type laneJob struct {
	src   uint32
	app   *sessionApp
	buf   *[]byte
	flush chan<- struct{}
}

// lane is one ingest worker: a goroutine draining jobs into goroutine-owned
// decoders and replicas. Between a flush acknowledgement and the next job
// send the lane is quiescent, which is when the connection goroutine may
// read and reset its state (the channel operations are the happens-before
// edges in both directions).
type lane struct {
	jobs chan laneJob

	// Owned by the lane goroutine (and by the connection goroutine only
	// while the lane is quiescent after a flush ack):
	decs     map[uint32]*trace.StreamDecoder
	reps     map[*sessionApp]*analysis.Replica
	admitted int64

	failed atomic.Bool
	errMu  sync.Mutex
	err    error
}

func (l *lane) fail(err error) {
	l.errMu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.errMu.Unlock()
	l.failed.Store(true)
}

func (l *lane) firstErr() error {
	l.errMu.Lock()
	defer l.errMu.Unlock()
	return l.err
}

// startLanes spins up the session's worker pool.
func (s *session) startLanes(workers int) {
	s.bufPool.New = func() any {
		b := make([]byte, 0, 1<<14)
		return &b
	}
	s.lanes = make([]*lane, workers)
	for i := range s.lanes {
		l := &lane{
			jobs: make(chan laneJob, laneQueueDepth),
			decs: make(map[uint32]*trace.StreamDecoder),
			reps: make(map[*sessionApp]*analysis.Replica),
		}
		s.lanes[i] = l
		s.laneWG.Add(1)
		go s.runLane(l)
	}
}

// enqueue hands one validated data pack to its source's lane. The pack
// bytes are copied: they alias the frame reader's buffer, which the
// connection reuses for the next frame before the lane gets to decode.
func (s *session) enqueue(src uint32, app *sessionApp, pack []byte) error {
	l := s.lanes[int(src)%len(s.lanes)]
	if l.failed.Load() {
		return l.firstErr()
	}
	bp := s.bufPool.Get().(*[]byte)
	*bp = append((*bp)[:0], pack...)
	l.jobs <- laneJob{src: src, app: app, buf: bp}
	return nil
}

// runLane is a lane goroutine's loop. A job after a failure is drained
// (its buffer recycled) but not folded: the session is going down as soon
// as the connection notices.
func (s *session) runLane(l *lane) {
	defer s.laneWG.Done()
	for j := range l.jobs {
		if j.flush != nil {
			close(j.flush)
			continue
		}
		if !l.failed.Load() {
			if err := l.fold(j); err != nil {
				l.fail(err)
			}
		}
		*j.buf = (*j.buf)[:0]
		s.bufPool.Put(j.buf)
	}
}

// fold decodes one pack into the lane's replica for its app, consulting
// the app's (atomic) admission gate per event exactly like the
// synchronous path.
func (l *lane) fold(j laneJob) error {
	app := j.app
	rep := l.reps[app]
	if rep == nil {
		rep = analysis.NewReplica(app.meta.AppID, app.opts)
		l.reps[app] = rep
	}
	foldEv := func(ev *trace.Event) {
		if app.gate.Admit(ev.Kind) {
			rep.Fold(ev)
			if app.tracker != nil {
				// The tracker is shared across lanes by design: its counts
				// are atomics plus one mutex, so lateness accounting stays
				// exact even though the fold path is shared-nothing.
				app.tracker.OnEvent(ev)
			}
			l.admitted++
		}
	}
	buf := *j.buf
	h, err := trace.PeekHeader(buf)
	if err != nil {
		return fmt.Errorf("serviced: pack header: %w", err)
	}
	if h.Version == trace.PackV3 {
		dec := l.decs[j.src]
		if dec == nil {
			dec = &trace.StreamDecoder{}
			l.decs[j.src] = dec
		}
		if _, err := dec.DecodeDispatch(buf, foldEv); err != nil {
			return fmt.Errorf("serviced: pack decode: %w", err)
		}
		return nil
	}
	var pr trace.PackReader
	if err := pr.Init(buf); err != nil {
		return fmt.Errorf("serviced: pack decode: %w", err)
	}
	for pr.Next() {
		foldEv(pr.Event())
	}
	if err := pr.Err(); err != nil {
		return fmt.Errorf("serviced: pack decode: %w", err)
	}
	return nil
}

// flushLanes is the epoch barrier: it quiesces every lane, surfaces any
// deferred decode error, and merges each lane's replicas into the
// session delta — MergeReset, so the replicas' maps and queue backing
// arrays stay allocated for the next epoch. Runs on the connection
// goroutine; the flush acks hand the lanes' state over, and the next
// pack send hands it back.
func (s *session) flushLanes() error {
	if len(s.lanes) == 0 {
		return nil
	}
	acks := make([]chan struct{}, len(s.lanes))
	for i, l := range s.lanes {
		ack := make(chan struct{})
		acks[i] = ack
		l.jobs <- laneJob{flush: ack}
	}
	for _, ack := range acks {
		<-ack
	}
	for _, l := range s.lanes {
		if err := l.firstErr(); err != nil {
			return err
		}
		s.events.Add(l.admitted)
		l.admitted = 0
		for app, rep := range l.reps {
			pp := rep.Partial()
			if pp.Profiler.Events() == 0 {
				continue
			}
			t0 := time.Now()
			if err := app.delta.MergeReset(pp); err != nil {
				return fmt.Errorf("serviced: replica merge: %w", err)
			}
			s.laneMerges.Add(1)
			s.laneMergeNs.Add(time.Since(t0).Nanoseconds())
		}
	}
	return nil
}

// shutdown stops the worker pool and waits for the lane goroutines to
// exit. Idempotent; called when the session ends, cleanly or not.
func (s *session) shutdown() {
	s.shutOnce.Do(func() {
		for _, l := range s.lanes {
			close(l.jobs)
		}
		s.laneWG.Wait()
	})
}
