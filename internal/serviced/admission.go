package serviced

import (
	"repro/internal/adapt"
	"repro/internal/telemetry"
)

// governor is one session's admission controller: the PR6 closed-loop
// overload law re-used on the serving side. It synthesizes engine-health
// snapshots from the session's ingest counters and feeds them to a
// (board-less) adapt.Controller; the controller's escalation level then
// actuates the session's credit window and its per-application admission
// gates, exactly the ladder the in-process adaptive engine climbs.
//
// The overload sensor is quota overage: a session's ingest volume past
// its byte budget plays the role of un-drained stream backlog
// (bytes_written − bytes_read) in the controller's law. One hot tenant
// therefore escalates — shrinking window, then shedding via its own
// gates with the audited completeness bound — while every other session's
// governor, fed only its own counters, stays at level 0. Observation
// happens at fixed pack counts, so a session's admission trajectory is a
// pure function of its own frame sequence: deterministic, testable,
// isolated.
//
// One deliberate inversion against the in-process controller: vmpi
// widens a writer's credit window under overload (riding out stalls),
// but a multi-tenant server narrows the hot tenant's window instead —
// the same level signal, opposite sign, because here the scarce resource
// is the shared engine, not the stalled stream.
type governor struct {
	ctl *adapt.Controller
	// base is the level-0 credit window; every escalation level halves it
	// (floor 1).
	base int
	// every is the observation cadence in packs.
	every int64
	// budget is the session's ingest quota in bytes (0 = unlimited: the
	// governor never escalates and the gates never shed).
	budget int64

	packs   int64
	bytesIn int64
	seq     uint64
}

// Default admission parameters.
const (
	// DefaultWindow is the level-0 per-session credit window in pack
	// frames.
	DefaultWindow = 8
	// DefaultGovernEvery is the admission governor's observation cadence
	// in packs.
	DefaultGovernEvery = 4
)

func newGovernor(cfg adapt.Config, base, every int, budget int64) (*governor, error) {
	if base <= 0 {
		base = DefaultWindow
	}
	if every <= 0 {
		every = DefaultGovernEvery
	}
	ctl, err := adapt.NewController(nil, cfg, nil)
	if err != nil {
		return nil, err
	}
	g := &governor{ctl: ctl, base: base, every: int64(every), budget: budget}
	// The controller's first snapshot only seeds its counter baselines;
	// deliver it now so the first in-band observation acts on real deltas.
	g.observe()
	return g, nil
}

// newGate mints an admission gate governed by this session's controller
// (one per application, so shed ledgers stay per-app like the in-process
// engine keeps them per-rank).
func (g *governor) newGate() *adapt.Gate { return g.ctl.NewGate() }

// onPack accounts one ingested pack frame and, at the observation
// cadence, runs a control decision.
func (g *governor) onPack(bytes int) {
	g.packs++
	g.bytesIn += int64(bytes)
	if g.packs%g.every == 0 {
		g.observe()
	}
}

// observe synthesizes one engine-health snapshot from the session
// counters and feeds the control law. Quota overage is presented as byte
// backlog — written bytes the (budgeted) engine has not "read".
func (g *governor) observe() {
	var over int64
	if g.budget > 0 && g.bytesIn > g.budget {
		over = g.bytesIn - g.budget
	}
	s := &telemetry.Snapshot{
		Seq:    g.seq,
		Source: -2, // synthetic: the daemon's admission sensor, not a sampled rank
		Metrics: []telemetry.MetricSample{
			{Name: "stream.bytes_written", Kind: telemetry.KindCounter, Value: g.bytesIn},
			{Name: "stream.bytes_read", Kind: telemetry.KindCounter, Value: g.bytesIn - over},
		},
	}
	g.seq++
	g.ctl.Observe(s)
}

// window returns the current credit window: the base halved per
// escalation level, floor 1.
func (g *governor) window() int {
	w := g.base >> g.ctl.Level()
	if w < 1 {
		w = 1
	}
	return w
}

// maxLevel returns the highest level the session reached.
func (g *governor) maxLevel() int { return g.ctl.MaxLevelSeen() }
