package serviced

import (
	"bytes"
	"encoding/json"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/client"
	"repro/internal/exp"
	"repro/internal/nas"
	"repro/internal/service"
	"repro/internal/trace"
	"repro/internal/wire"
)

// workload builds a fresh workload instance (runs mutate workloads, so
// every simulation gets its own).
func workload(t *testing.T, kind string, class byte, procs, iters int) *nas.Workload {
	t.Helper()
	w, err := nas.ByName(kind, nas.Class(class), procs, iters)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// capture runs the simulation with the analysis engine replaced by the
// capture tee.
func capture(t *testing.T, opts exp.ProfileOptions, specs ...[4]int) *exp.Capture {
	t.Helper()
	names := []string{"CG", "LU"}
	var ws []*nas.Workload
	for _, s := range specs {
		ws = append(ws, workload(t, names[s[0]], byte(s[1]), s[2], s[3]))
	}
	cp, err := exp.CaptureRun(exp.Tera100(), ws, opts)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

// inProcessReport renders the same job through the in-process service
// path (the byte-identity baseline).
func inProcessReport(t *testing.T, opts exp.ProfileOptions, specs ...[4]int) string {
	t.Helper()
	names := []string{"CG", "LU"}
	var ws []*nas.Workload
	for _, s := range specs {
		ws = append(ws, workload(t, names[s[0]], byte(s[1]), s[2], s[3]))
	}
	svc := service.New(exp.Tera100())
	res, err := svc.Submit(service.Job{Workloads: ws, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Report.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// startTCP serves a daemon on an ephemeral loopback port.
func startTCP(t *testing.T, opts Options) (*Daemon, string) {
	t.Helper()
	d := New(opts)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go d.Serve(l)
	return d, l.Addr().String()
}

// pipeClient connects a client to the daemon over an in-process
// net.Pipe — the non-TCP transport the daemon must serve identically.
func pipeClient(t *testing.T, d *Daemon, maxFormat int) *client.Client {
	t.Helper()
	srv, cli := net.Pipe()
	go d.ServeConn(srv)
	c, err := client.New(cli, maxFormat)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Shutdown() })
	return c
}

var testOpts = exp.ProfileOptions{
	WaitState: true,
	Callsites: true,
	Sizes:     true,
}

// TestLoopbackByteIdentical is the acceptance test: two concurrent
// loopback-TCP sessions, each replaying a captured simulated workload,
// must produce final reports byte-identical to the in-process
// service.Submit path for the same workloads — for a v1 session and a v3
// session at once.
func TestLoopbackByteIdentical(t *testing.T) {
	cg := [4]int{0, 'A', 16, 2}
	lu := [4]int{1, 'A', 16, 2}

	optsV1 := testOpts
	optsV1.PackVersion = trace.PackV1
	optsV3 := testOpts
	optsV3.PackVersion = trace.PackV3

	// Simulations run serially (they share the vmpi payload pools); only
	// the wire sessions run concurrently.
	capCG := capture(t, optsV1, cg)
	capLU := capture(t, optsV3, lu)
	wantCG := inProcessReport(t, optsV1, cg)
	wantLU := inProcessReport(t, optsV3, lu)

	svc := service.New(exp.Tera100())
	d, addr := startTCP(t, Options{Service: svc})

	run := func(cp *exp.Capture, want string) func() error {
		return func() error {
			c, err := client.Dial(addr, cp.PackVersion)
			if err != nil {
				return err
			}
			defer c.Shutdown()
			rep, err := c.Replay(cp, 0)
			if err != nil {
				return err
			}
			if rep.Rendered != want {
				return &mismatchError{got: rep.Rendered, want: want}
			}
			return nil
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, f := range []func() error{run(capCG, wantCG), run(capLU, wantLU)} {
		wg.Add(1)
		go func(i int, f func() error) {
			defer wg.Done()
			errs[i] = f()
		}(i, f)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Both sessions landed in the shared service history.
	st, err := d.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.SessionsClosed != 2 || st.SessionsLive != 0 || st.ShedEvents != 0 {
		t.Fatalf("status = %+v", st)
	}
	if got := svc.Stats().Jobs; got != 2 {
		t.Fatalf("service jobs = %d, want 2", got)
	}
}

type mismatchError struct{ got, want string }

func (e *mismatchError) Error() string {
	gl, wl := strings.Split(e.got, "\n"), strings.Split(e.want, "\n")
	for i := range gl {
		if i >= len(wl) || gl[i] != wl[i] {
			w := "<missing>"
			if i < len(wl) {
				w = wl[i]
			}
			return "daemon report diverges from in-process report at line " +
				strings.TrimSpace(gl[i]) + " != " + strings.TrimSpace(w)
		}
	}
	return "daemon report diverges from in-process report (length)"
}

// TestDiffReplayConvergence polls the Diff API during a replay and
// verifies the client-merged cursor state equals a full Snapshot at the
// same epoch, byte for byte — and that the final report is still
// byte-identical to the in-process path afterwards (querying must not
// perturb the analysis).
func TestDiffReplayConvergence(t *testing.T) {
	spec := [4]int{0, 'A', 16, 2}
	opts := testOpts
	opts.PackVersion = trace.PackV2
	opts.TemporalWindowNs = (10 * time.Millisecond).Nanoseconds()
	cp := capture(t, opts, spec)
	want := inProcessReport(t, opts, spec)

	_, addr := startTCP(t, Options{})
	c, err := client.Dial(addr, cp.PackVersion)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	rep, err := c.Replay(cp, 3) // Diff every 3 packs + final Verify
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rendered != want {
		t.Fatal(&mismatchError{got: rep.Rendered, want: want})
	}
	if rep.Shed != 0 || rep.MaxLevel != 0 {
		t.Fatalf("unthrottled session shed %d at level %d", rep.Shed, rep.MaxLevel)
	}
}

// TestDiffCursorAgesOut drives the session's epoch log past its cap and
// checks an aged-out cursor gets a full-state resync the replayer can
// still converge from.
func TestDiffCursorAgesOut(t *testing.T) {
	spec := [4]int{0, 'A', 16, 1}
	opts := testOpts
	opts.PackVersion = trace.PackV1
	cp := capture(t, opts, spec)
	if len(cp.Packs) < 6 {
		t.Fatalf("capture too small (%d packs) to exercise the epoch log", len(cp.Packs))
	}

	d := New(Options{EpochCap: 2})
	c := pipeClient(t, d, cp.PackVersion)
	meta := client.SessionMetaFromCapture(cp)
	if _, err := c.Register(meta); err != nil {
		t.Fatal(err)
	}
	replay := client.NewDiffReplayer(meta)
	// Hold the cursor at 0 while sealing one epoch per pack: after
	// epochCap+1 seals the cursor has aged out.
	for i, p := range cp.Packs {
		if err := c.SendPack(uint32(p.Src), p.Data); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Snapshot(); err != nil { // forces a seal per pack
			t.Fatal(err)
		}
		_ = i
	}
	st, err := c.Diff(0)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Full {
		t.Fatalf("aged-out cursor got a delta (From %d, To %d), want full resync", st.From, st.To)
	}
	if err := replay.Apply(st); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := replay.Verify(snap); err != nil {
		t.Fatal(err)
	}
	// A cursor ahead of the epoch head is a protocol error.
	if _, err := c.Diff(snap.To + 100); err == nil || !strings.Contains(err.Error(), "ahead") {
		t.Fatalf("future cursor: err = %v", err)
	}
}

// TestLifecycleEdges drives the protocol-violation paths: every one must
// answer with a terminal error frame, and the daemon's accounting must
// reflect the aborted session.
func TestLifecycleEdges(t *testing.T) {
	spec := [4]int{0, 'A', 16, 1}
	opts := testOpts
	opts.PackVersion = trace.PackV1
	cp := capture(t, opts, spec)
	meta := client.SessionMetaFromCapture(cp)

	t.Run("pack before register", func(t *testing.T) {
		d := New(Options{})
		c := pipeClient(t, d, 0)
		// The SDK refuses locally; speak raw frames to hit the daemon path.
		raw := rawSession(t, d)
		if err := raw.expectError(wire.TypePack, wire.EncodePack(0, cp.Packs[0].Data), "before register"); err != nil {
			t.Fatal(err)
		}
		_ = c
	})

	t.Run("duplicate register", func(t *testing.T) {
		d := New(Options{})
		raw := rawSession(t, d)
		mp, _ := wire.EncodeSessionMeta(meta)
		if err := raw.roundTrip(wire.TypeRegister, mp, wire.TypeRegisterAck); err != nil {
			t.Fatal(err)
		}
		if err := raw.expectError(wire.TypeRegister, mp, "duplicate register"); err != nil {
			t.Fatal(err)
		}
		waitCounter(t, func() bool { st, _ := d.Status(); return st.Aborted == 1 })
	})

	t.Run("snapshot and close after close", func(t *testing.T) {
		d := New(Options{})
		c := pipeClient(t, d, cp.PackVersion)
		if _, err := c.Register(meta); err != nil {
			t.Fatal(err)
		}
		if err := c.SendPack(uint32(cp.Packs[0].Src), cp.Packs[0].Data); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Close(client.CloseMetaFromCapture(cp)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Snapshot(); err == nil || !strings.Contains(err.Error(), "after close") {
			t.Fatalf("snapshot after close: err = %v", err)
		}
		// The error frame is terminal: a second Close cannot even be
		// delivered on this connection.
		if _, err := c.Close(client.CloseMetaFromCapture(cp)); err == nil {
			t.Fatal("close after terminal error succeeded")
		}
		st, err := d.Status()
		if err != nil {
			t.Fatal(err)
		}
		if st.SessionsClosed != 1 || st.Aborted != 0 {
			t.Fatalf("status = %+v", st)
		}
	})

	t.Run("double close on fresh connections", func(t *testing.T) {
		d := New(Options{})
		c := pipeClient(t, d, cp.PackVersion)
		if _, err := c.Register(meta); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Close(client.CloseMetaFromCapture(cp)); err != nil {
			t.Fatal(err)
		}
		raw := rawSession(t, d)
		cmp, _ := wire.EncodeCloseMeta(client.CloseMetaFromCapture(cp))
		if err := raw.expectError(wire.TypeClose, cmp, "before register"); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("format mismatch pack", func(t *testing.T) {
		v3 := testOpts
		v3.PackVersion = trace.PackV3
		cpV3 := capture(t, v3, spec)
		d := New(Options{})
		raw := rawSession(t, d) // hello announces v1, so the session negotiates v1
		mp, _ := wire.EncodeSessionMeta(client.SessionMetaFromCapture(cpV3))
		if err := raw.roundTrip(wire.TypeRegister, mp, wire.TypeRegisterAck); err != nil {
			t.Fatal(err)
		}
		pk := wire.EncodePack(uint32(cpV3.Packs[0].Src), cpV3.Packs[0].Data)
		if err := raw.expectError(wire.TypePack, pk, "negotiated"); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("client disconnect mid-pack", func(t *testing.T) {
		d := New(Options{})
		srv, cli := net.Pipe()
		done := make(chan error, 1)
		go func() { done <- d.ServeConn(srv) }()
		c, err := client.New(cli, cp.PackVersion)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Register(meta); err != nil {
			t.Fatal(err)
		}
		// A truncated frame: the header promises more bytes than ever come.
		frame := []byte{'P', 'F', wire.TypePack, 0xFF, 0x00, 0x00, 0x00, 1, 2, 3}
		if _, err := cli.Write(frame); err != nil {
			t.Fatal(err)
		}
		cli.Close()
		if err := <-done; err == nil || !strings.Contains(err.Error(), "reading frame") {
			t.Fatalf("mid-pack disconnect: err = %v", err)
		}
		st, _ := d.Status()
		if st.Aborted != 1 {
			t.Fatalf("aborted = %d, want 1", st.Aborted)
		}
	})

	t.Run("clean disconnect before close aborts", func(t *testing.T) {
		d := New(Options{})
		srv, cli := net.Pipe()
		done := make(chan error, 1)
		go func() { done <- d.ServeConn(srv) }()
		c, err := client.New(cli, cp.PackVersion)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Register(meta); err != nil {
			t.Fatal(err)
		}
		cli.Close() // EOF at a frame boundary, but the session is open
		if err := <-done; err == nil || !strings.Contains(err.Error(), "before close") {
			t.Fatalf("open-session EOF: err = %v", err)
		}
		st, _ := d.Status()
		if st.Aborted != 1 {
			t.Fatalf("aborted = %d, want 1", st.Aborted)
		}
	})

	t.Run("at capacity", func(t *testing.T) {
		d := New(Options{MaxSessions: 1})
		c1 := pipeClient(t, d, cp.PackVersion)
		if _, err := c1.Register(meta); err != nil {
			t.Fatal(err)
		}
		c2 := pipeClient(t, d, cp.PackVersion)
		if _, err := c2.Register(meta); err == nil || !strings.Contains(err.Error(), "capacity") {
			t.Fatalf("over-capacity register: err = %v", err)
		}
		st, _ := d.Status()
		if st.Rejected != 1 || st.SessionsLive != 1 {
			t.Fatalf("status = %+v", st)
		}
		// The slot frees when the first session closes; a new session fits.
		if _, err := c1.Close(client.CloseMetaFromCapture(cp)); err != nil {
			t.Fatal(err)
		}
		c3 := pipeClient(t, d, cp.PackVersion)
		if _, err := c3.Register(meta); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("hello negotiation clamps to daemon max", func(t *testing.T) {
		d := New(Options{MaxFormat: trace.PackV2})
		c := pipeClient(t, d, trace.PackV3)
		if c.Format() != trace.PackV2 {
			t.Fatalf("negotiated v%d, want v2", c.Format())
		}
	})
}

// waitCounter polls for an asynchronous daemon-side counter update.
func waitCounter(t *testing.T, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatal("counter never reached the expected value")
		}
		time.Sleep(time.Millisecond)
	}
}

// raw is a frame-level connection for protocol-violation tests the
// client SDK refuses to produce.
type raw struct {
	conn net.Conn
	fr   *wire.Reader
}

// rawConn opens a frame-level pipe connection without the handshake.
func rawConn(t *testing.T, d *Daemon) *raw {
	t.Helper()
	srv, cli := net.Pipe()
	go d.ServeConn(srv)
	r := &raw{conn: cli, fr: wire.NewReader(cli)}
	t.Cleanup(func() { cli.Close() })
	return r
}

func rawSession(t *testing.T, d *Daemon) *raw {
	t.Helper()
	r := rawConn(t, d)
	if err := r.roundTrip(wire.TypeHello, wire.EncodeHello(wire.Hello{Proto: wire.ProtoVersion, MaxFormat: trace.PackV1}), wire.TypeHelloAck); err != nil {
		t.Fatal(err)
	}
	return r
}

func (r *raw) roundTrip(typ byte, payload []byte, want byte) error {
	if err := wire.WriteFrame(r.conn, typ, payload); err != nil {
		return err
	}
	f, err := r.fr.Next()
	if err != nil {
		return err
	}
	if f.Type != want {
		return &mismatchError{got: string(rune(f.Type)), want: string(rune(want))}
	}
	return nil
}

func (r *raw) expectError(typ byte, payload []byte, contains string) error {
	if err := wire.WriteFrame(r.conn, typ, payload); err != nil {
		return err
	}
	f, err := r.fr.Next()
	if err != nil {
		return err
	}
	if f.Type != wire.TypeError || !strings.Contains(string(f.Payload), contains) {
		return &mismatchError{got: string(f.Payload), want: contains}
	}
	return nil
}

// TestHotTenantIsolation is the multi-tenant acceptance test: a tenant
// streaming far past its byte budget must escalate through the admission
// ladder and shed with an audited completeness bound, while a healthy
// tenant on the same daemon stays at level 0, sheds nothing, and still
// produces a report byte-identical to the in-process path.
func TestHotTenantIsolation(t *testing.T) {
	healthySpec := [4]int{0, 'A', 16, 2}
	opts := testOpts
	opts.PackVersion = trace.PackV2

	capHealthy := capture(t, opts, healthySpec)
	capHot := capture(t, opts, [4]int{1, 'A', 16, 12})
	wantHealthy := inProcessReport(t, opts, healthySpec)

	var healthyBytes, hotBytes int64
	for _, p := range capHealthy.Packs {
		healthyBytes += int64(len(p.Data))
	}
	for _, p := range capHot.Packs {
		hotBytes += int64(len(p.Data))
	}
	// The budget sits between the two volumes: the healthy tenant never
	// reaches it, the hot tenant blows through it with packs to spare.
	budget := healthyBytes + (hotBytes-healthyBytes)/8
	if budget <= healthyBytes || hotBytes < 2*budget {
		t.Fatalf("volumes too close for the test: healthy %d, hot %d", healthyBytes, hotBytes)
	}

	_, addr := startTCP(t, Options{
		SessionBudgetBytes: budget,
		Adaptive:           adapt.Config{BacklogHighBytes: budget / 8},
	})

	type result struct {
		rep wire.FinalReport
		err error
	}
	run := func(cp *exp.Capture, out *result) func() {
		return func() {
			c, err := client.Dial(addr, cp.PackVersion)
			if err != nil {
				out.err = err
				return
			}
			defer c.Shutdown()
			out.rep, out.err = c.Replay(cp, 0)
		}
	}
	var hot, healthy result
	var wg sync.WaitGroup
	for _, f := range []func(){run(capHot, &hot), run(capHealthy, &healthy)} {
		wg.Add(1)
		go func(f func()) { defer wg.Done(); f() }(f)
	}
	wg.Wait()
	if hot.err != nil || healthy.err != nil {
		t.Fatalf("hot: %v, healthy: %v", hot.err, healthy.err)
	}

	if hot.rep.MaxLevel < 2 {
		t.Fatalf("hot tenant never escalated past level %d", hot.rep.MaxLevel)
	}
	if hot.rep.Shed == 0 {
		t.Fatal("hot tenant shed nothing")
	}
	if !strings.Contains(hot.rep.Rendered, "Measurement completeness") {
		t.Fatal("hot tenant's report lacks the completeness section")
	}

	// The healthy tenant is untouched: level 0, zero shed, byte-identical.
	if healthy.rep.MaxLevel != 0 || healthy.rep.Shed != 0 {
		t.Fatalf("healthy tenant throttled: level %d, shed %d", healthy.rep.MaxLevel, healthy.rep.Shed)
	}
	if healthy.rep.Rendered != wantHealthy {
		t.Fatal(&mismatchError{got: healthy.rep.Rendered, want: wantHealthy})
	}
}

// TestStatusJSON checks the daemon's status document embeds the service
// status and survives a JSON round trip.
func TestStatusJSON(t *testing.T) {
	svc := service.New(exp.Tera100())
	d := New(Options{Service: svc})
	raw, err := d.StatusJSON()
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Service == nil {
		t.Fatal("status lacks the embedded service document")
	}
	var ss service.ServiceStatusJSON
	if err := json.Unmarshal(st.Service, &ss); err != nil {
		t.Fatal(err)
	}
	if ss.Platform != "Tera100" {
		t.Fatalf("platform = %q", ss.Platform)
	}
}

// TestProtocolErrors sweeps the remaining protocol-violation branches:
// handshake failures, malformed control payloads, and unknown frames.
func TestProtocolErrors(t *testing.T) {
	spec := [4]int{0, 'A', 16, 1}
	opts := testOpts
	opts.PackVersion = trace.PackV1
	cp := capture(t, opts, spec)
	meta := client.SessionMetaFromCapture(cp)
	mp, _ := wire.EncodeSessionMeta(meta)

	t.Run("first frame not hello", func(t *testing.T) {
		r := rawConn(t, New(Options{}))
		if err := r.expectError(wire.TypeStats, nil, "expected hello"); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("bad hello payload", func(t *testing.T) {
		r := rawConn(t, New(Options{}))
		if err := r.expectError(wire.TypeHello, []byte{1}, "hello payload"); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("bad protocol version", func(t *testing.T) {
		r := rawConn(t, New(Options{}))
		if err := r.expectError(wire.TypeHello, wire.EncodeHello(wire.Hello{Proto: 99, MaxFormat: 1}), "protocol version"); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("no usable format", func(t *testing.T) {
		r := rawConn(t, New(Options{}))
		if err := r.expectError(wire.TypeHello, wire.EncodeHello(wire.Hello{Proto: wire.ProtoVersion, MaxFormat: 0}), "no usable pack format"); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("bad register payload", func(t *testing.T) {
		r := rawSession(t, New(Options{}))
		empty, _ := wire.EncodeSessionMeta(wire.SessionMeta{Title: "no apps"})
		if err := r.expectError(wire.TypeRegister, empty, "no applications"); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("duplicate app id in register", func(t *testing.T) {
		r := rawSession(t, New(Options{}))
		dup := meta
		dup.Apps = []wire.AppMeta{meta.Apps[0], meta.Apps[0]}
		p, _ := wire.EncodeSessionMeta(dup)
		if err := r.expectError(wire.TypeRegister, p, "duplicate app id"); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("bad diff payload", func(t *testing.T) {
		r := rawSession(t, New(Options{}))
		if err := r.roundTrip(wire.TypeRegister, mp, wire.TypeRegisterAck); err != nil {
			t.Fatal(err)
		}
		if err := r.expectError(wire.TypeDiff, []byte{1, 2}, "diff payload"); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("bad close payload", func(t *testing.T) {
		r := rawSession(t, New(Options{}))
		if err := r.roundTrip(wire.TypeRegister, mp, wire.TypeRegisterAck); err != nil {
			t.Fatal(err)
		}
		if err := r.expectError(wire.TypeClose, []byte("{"), "close payload"); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("close app count mismatch", func(t *testing.T) {
		d := New(Options{})
		c := pipeClient(t, d, cp.PackVersion)
		if _, err := c.Register(meta); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Close(wire.CloseMeta{}); err == nil || !strings.Contains(err.Error(), "names 0 apps") {
			t.Fatalf("empty close: err = %v", err)
		}
	})

	t.Run("unknown frame type", func(t *testing.T) {
		r := rawSession(t, New(Options{}))
		if err := r.expectError(0x7F, nil, "unexpected frame type"); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("bad pack header", func(t *testing.T) {
		r := rawSession(t, New(Options{}))
		if err := r.roundTrip(wire.TypeRegister, mp, wire.TypeRegisterAck); err != nil {
			t.Fatal(err)
		}
		if err := r.expectError(wire.TypePack, wire.EncodePack(0, []byte{1, 2}), "pack header"); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("pack for unknown app id", func(t *testing.T) {
		r := rawSession(t, New(Options{}))
		m2 := meta
		m2.Apps = []wire.AppMeta{{Name: meta.Apps[0].Name, Procs: meta.Apps[0].Procs, AppID: meta.Apps[0].AppID + 77}}
		p2, _ := wire.EncodeSessionMeta(m2)
		if err := r.roundTrip(wire.TypeRegister, p2, wire.TypeRegisterAck); err != nil {
			t.Fatal(err)
		}
		pk := wire.EncodePack(uint32(cp.Packs[0].Src), cp.Packs[0].Data)
		if err := r.expectError(wire.TypePack, pk, "unregistered app"); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAuditPackIngestion checks a client-side shed ledger (an audit
// pack, as the adaptive instrumented runtime emits) folds into the
// session's completeness accounting.
func TestAuditPackIngestion(t *testing.T) {
	spec := [4]int{0, 'A', 16, 1}
	opts := testOpts
	opts.PackVersion = trace.PackV1
	cp := capture(t, opts, spec)
	meta := client.SessionMetaFromCapture(cp)

	d := New(Options{})
	c := pipeClient(t, d, cp.PackVersion)
	if _, err := c.Register(meta); err != nil {
		t.Fatal(err)
	}
	for _, p := range cp.Packs {
		if err := c.SendPack(uint32(p.Src), p.Data); err != nil {
			t.Fatal(err)
		}
	}
	audit := trace.EncodeAuditPack(meta.Apps[0].AppID, 0, []trace.AuditEntry{
		{Kind: trace.KindIsend, Shed: 40, Kept: 60},
	})
	if err := c.SendPack(0, audit); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Close(client.CloseMetaFromCapture(cp))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Rendered, "Measurement completeness") {
		t.Fatal("client-side audit did not surface in the completeness section")
	}
	// The daemon's own gates shed nothing; the ledger is the client's.
	if rep.Shed != 0 {
		t.Fatalf("daemon-side shed = %d, want 0", rep.Shed)
	}
}

// TestDiffAtHeadIsEmpty checks a cursor at the epoch head gets an empty
// delta, not a resync.
func TestDiffAtHeadIsEmpty(t *testing.T) {
	spec := [4]int{0, 'A', 16, 1}
	opts := testOpts
	opts.PackVersion = trace.PackV1
	cp := capture(t, opts, spec)

	d := New(Options{})
	c := pipeClient(t, d, cp.PackVersion)
	if _, err := c.Register(client.SessionMetaFromCapture(cp)); err != nil {
		t.Fatal(err)
	}
	if err := c.SendPack(uint32(cp.Packs[0].Src), cp.Packs[0].Data); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Diff(snap.To)
	if err != nil {
		t.Fatal(err)
	}
	if st.Full || len(st.Apps) != 0 || st.From != snap.To || st.To != snap.To {
		t.Fatalf("head diff = %+v", st)
	}
}

// TestStatsOverWireAndLogf exercises the Stats frame end to end over TCP
// and the daemon's connection diagnostics hook.
func TestStatsOverWireAndLogf(t *testing.T) {
	var mu sync.Mutex
	var logged []string
	d, addr := startTCP(t, Options{
		Service: service.New(exp.Tera100()),
		Logf: func(format string, args ...any) {
			mu.Lock()
			logged = append(logged, format)
			mu.Unlock()
		},
	})
	c, err := client.Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Service == nil {
		t.Fatal("wire status lacks the service document")
	}
	c.Shutdown()
	_ = d

	// A protocol violation over TCP lands in the diagnostics hook.
	c2, err := client.Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	c2.Snapshot() // before register: terminal error
	c2.Shutdown()
	waitCounter(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(logged) > 0 })
}
