package serviced

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adapt"
	"repro/internal/analysis"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/wire"
)

// sessionApp is one application's analysis state inside a session: the
// same leaf-partial machinery the reduction tree runs, split into an
// accumulating delta and the merged cumulative state behind it.
type sessionApp struct {
	meta wire.AppMeta
	// opts is the app's module selection, kept so ingest lanes can mint
	// matching replicas (see lanes.go).
	opts analysis.PartialOptions
	// gate is the application's admission gate, programmed by the
	// session's governor (its ladder sheds nothing below level 2).
	gate *adapt.Gate
	// delta accumulates events since the last seal. Non-final seals flush
	// only settled statistics — wait-state pending queues stay here until
	// Close, mirroring the tree leaves' final-flush semantics.
	delta *analysis.Partial
	// cum is the merge of every sealed delta: the state Snapshot serves.
	cum *analysis.Partial
	// tracker, on windowed sessions, is the arrival-side lateness
	// accounting shared by the synchronous fold and every ingest lane.
	// The daemon has no virtual clock, so lag stays zero and lateness is
	// judged purely against the event-time watermark: an event behind a
	// window the watermark already passed is late.
	tracker *analysis.WindowTracker
}

// session is one tenant's profiling session: per-application partial
// profiles fed by the wire pack stream, sealed into a monotonic epoch
// log that backs the Snapshot/Diff query API. A session lives on one
// connection and is driven by a single goroutine; with workers > 1 a
// bounded lane pool (lanes.go) folds data packs off that goroutine into
// per-app replicas, merged back at every seal. Counters the daemon's
// Status reads concurrently are atomics; everything else stays
// connection-goroutine-owned.
type session struct {
	id     uint64
	format int // negotiated pack wire format
	meta   wire.SessionMeta
	apps   []*sessionApp
	byID   map[uint32]*sessionApp
	// decs holds one persistent v3 stream decoder per writer (keyed by
	// the client-assigned writer id): v3 packs index a cross-pack
	// dictionary, so each writer's packs must decode in order through its
	// own decoder — the same invariant the in-process fused ingest keeps.
	decs map[uint32]*trace.StreamDecoder
	gov  *governor

	// epoch counts seals; sealed retains the most recent epochCap sealed
	// deltas, covering epochs (epoch-len(sealed), epoch]. A Diff cursor
	// older than that gets a full-state resync.
	epoch    atomic.Uint64
	dirty    bool
	sealed   []sealedEpoch
	epochCap int

	// lanes is the bounded ingest worker pool (empty = synchronous
	// ingest); see lanes.go for the full concurrency contract.
	lanes       []*lane
	laneWG      sync.WaitGroup
	bufPool     sync.Pool
	shutOnce    sync.Once
	laneMerges  atomic.Int64
	laneMergeNs atomic.Int64

	packs  atomic.Int64
	events atomic.Int64
	closed bool
}

// sealedEpoch is one sealed delta: the encoded per-application partials
// of everything ingested between two seals, indexed like session.apps.
type sealedEpoch struct {
	apps [][]byte
}

// DefaultEpochCap bounds the retained sealed-delta log per session.
const DefaultEpochCap = 64

func newSession(id uint64, format int, meta wire.SessionMeta, gov *governor, epochCap, workers int) (*session, error) {
	if epochCap <= 0 {
		epochCap = DefaultEpochCap
	}
	s := &session{
		id:       id,
		format:   format,
		meta:     meta,
		byID:     make(map[uint32]*sessionApp, len(meta.Apps)),
		decs:     make(map[uint32]*trace.StreamDecoder),
		gov:      gov,
		epochCap: epochCap,
	}
	for _, am := range meta.Apps {
		opts := analysis.PartialOptions{
			AppSize:          am.Procs,
			WaitState:        meta.WaitState,
			TemporalWindowNs: meta.TemporalWindowNs,
			Callsites:        meta.Callsites,
			Sizes:            meta.Sizes,
			WindowNs:         meta.WindowNs,
			WindowSlideNs:    meta.WindowSlideNs,
		}
		if _, dup := s.byID[am.AppID]; dup {
			return nil, fmt.Errorf("serviced: duplicate app id %d in register", am.AppID)
		}
		app := &sessionApp{
			meta:  am,
			opts:  opts,
			gate:  gov.newGate(),
			delta: analysis.NewPartial(am.AppID, opts),
			cum:   analysis.NewPartial(am.AppID, opts),
		}
		if meta.WindowNs > 0 {
			app.tracker = analysis.NewWindowTracker(meta.WindowNs, meta.WindowSlideNs, meta.WindowGraceNs, nil)
		}
		s.apps = append(s.apps, app)
		s.byID[am.AppID] = app
	}
	if workers > 1 {
		s.startLanes(workers)
	}
	return s, nil
}

// workerCount reports the session's ingest pool size (1 = synchronous).
func (s *session) workerCount() int {
	if len(s.lanes) == 0 {
		return 1
	}
	return len(s.lanes)
}

// ingest folds one pack frame into the session. The pack bytes alias the
// frame reader's buffer; the synchronous path consumes them in place,
// the lane path copies them before handing off. Audit packs are always
// folded here — they touch the delta's completeness module, which the
// lanes never do.
func (s *session) ingest(src uint32, pack []byte) error {
	h, err := trace.PeekHeader(pack)
	if err != nil {
		return fmt.Errorf("serviced: pack header: %w", err)
	}
	app := s.byID[h.AppID]
	if app == nil {
		return fmt.Errorf("serviced: pack for unregistered app id %d", h.AppID)
	}
	if h.Version == trace.PackAudit {
		// A client-side shed ledger (adaptive instrumented runs): fold it
		// into the same completeness accounting the daemon's own gates use.
		_, entries, err := trace.DecodeAuditPack(pack)
		if err != nil {
			return fmt.Errorf("serviced: audit pack: %w", err)
		}
		app.delta.AddAudit(entries)
		s.dirty = true
		s.gov.onPack(len(pack))
		return nil
	}
	if h.Version != s.format {
		return fmt.Errorf("serviced: pack format v%d on a session negotiated for v%d", h.Version, s.format)
	}
	if len(s.lanes) > 0 {
		if err := s.enqueue(src, app, pack); err != nil {
			return err
		}
	} else if err := s.foldSync(src, app, pack, h.Version); err != nil {
		return err
	}
	s.packs.Add(1)
	s.dirty = true
	s.gov.onPack(len(pack))
	return nil
}

// foldSync is the synchronous decode+fold path: events go straight into
// the app's delta on the connection goroutine.
func (s *session) foldSync(src uint32, app *sessionApp, pack []byte, version int) error {
	admitted := int64(0)
	fold := func(ev *trace.Event) {
		if app.gate.Admit(ev.Kind) {
			app.delta.AddEvent(ev)
			if app.tracker != nil {
				app.tracker.OnEvent(ev)
			}
			admitted++
		}
	}
	if version == trace.PackV3 {
		dec := s.decs[src]
		if dec == nil {
			dec = &trace.StreamDecoder{}
			s.decs[src] = dec
		}
		if _, err := dec.DecodeDispatch(pack, fold); err != nil {
			return fmt.Errorf("serviced: pack decode: %w", err)
		}
	} else {
		var pr trace.PackReader
		if err := pr.Init(pack); err != nil {
			return fmt.Errorf("serviced: pack decode: %w", err)
		}
		for pr.Next() {
			fold(pr.Event())
		}
		if err := pr.Err(); err != nil {
			return fmt.Errorf("serviced: pack decode: %w", err)
		}
	}
	s.events.Add(admitted)
	return nil
}

// seal closes the current delta into a new epoch: pending lane work is
// flushed into the delta first (the lane pool's epoch barrier), then
// each application's delta is flushed (settled statistics only —
// pendings stay local), merged into the cumulative state, and retained
// for Diff replay.
func (s *session) seal() error {
	if err := s.flushLanes(); err != nil {
		return err
	}
	if !s.dirty {
		return nil
	}
	epoch := s.epoch.Load()
	se := sealedEpoch{apps: make([][]byte, len(s.apps))}
	for i, a := range s.apps {
		buf := a.delta.Flush(nil, false)
		se.apps[i] = buf
		dp, err := analysis.DecodePartial(buf)
		if err != nil {
			return fmt.Errorf("serviced: seal epoch %d: %w", epoch+1, err)
		}
		if err := a.cum.Merge(dp); err != nil {
			return fmt.Errorf("serviced: seal epoch %d: %w", epoch+1, err)
		}
	}
	s.epoch.Add(1)
	s.sealed = append(s.sealed, se)
	if over := len(s.sealed) - s.epochCap; over > 0 {
		s.sealed = append(s.sealed[:0:0], s.sealed[over:]...)
	}
	s.dirty = false
	return nil
}

// snapshot seals pending work and returns the full cumulative state:
// one canonical partial per application, valid as a Diff cursor at
// epoch To.
func (s *session) snapshot() (wire.State, error) {
	if err := s.seal(); err != nil {
		return wire.State{}, err
	}
	st := wire.State{From: 0, To: s.epoch.Load(), Full: true, Apps: make([][]byte, len(s.apps))}
	for i, a := range s.apps {
		st.Apps[i] = a.cum.AppendCanonical(nil)
	}
	return st, nil
}

// diff seals pending work and returns the state delta after the client's
// cursor: the merge of every sealed epoch in (cursor, epoch], one
// mergeable partial per application. A cursor that aged out of the
// retained log gets the full state back (Full set — replace, don't
// merge); a cursor at the head gets an empty delta.
func (s *session) diff(cursor uint64) (wire.State, error) {
	if err := s.seal(); err != nil {
		return wire.State{}, err
	}
	epoch := s.epoch.Load()
	if cursor > epoch {
		return wire.State{}, fmt.Errorf("serviced: diff cursor %d ahead of epoch %d", cursor, epoch)
	}
	lo := epoch - uint64(len(s.sealed)) // sealed log covers (lo, epoch]
	if cursor < lo {
		st, err := s.snapshot()
		if err != nil {
			return wire.State{}, err
		}
		st.From = cursor
		return st, nil
	}
	st := wire.State{From: cursor, To: epoch}
	if cursor == epoch {
		return st, nil
	}
	st.Apps = make([][]byte, len(s.apps))
	for i := range s.apps {
		var acc *analysis.Partial
		for _, se := range s.sealed[cursor-lo:] {
			dp, err := analysis.DecodePartial(se.apps[i])
			if err != nil {
				return wire.State{}, fmt.Errorf("serviced: diff decode: %w", err)
			}
			if acc == nil {
				acc = dp
			} else if err := acc.Merge(dp); err != nil {
				return wire.State{}, fmt.Errorf("serviced: diff merge: %w", err)
			}
		}
		st.Apps[i] = acc.AppendCanonical(nil)
	}
	return st, nil
}

// close runs the final seal (wait-state pendings travel now, like a tree
// leaf's final flush), folds the admission gates' shed ledgers into the
// completeness accounting, and builds the final report.
func (s *session) close(cm wire.CloseMeta) (*report.Report, error) {
	if len(cm.Apps) != len(s.apps) {
		return nil, fmt.Errorf("serviced: close names %d apps, session has %d", len(cm.Apps), len(s.apps))
	}
	if err := s.flushLanes(); err != nil {
		return nil, err
	}
	for _, a := range s.apps {
		if a.gate.TotalShed() > 0 {
			a.delta.AddAudit(a.gate.Entries())
		}
	}
	for _, a := range s.apps {
		buf := a.delta.Flush(nil, true)
		dp, err := analysis.DecodePartial(buf)
		if err != nil {
			return nil, fmt.Errorf("serviced: final seal: %w", err)
		}
		if err := a.cum.Merge(dp); err != nil {
			return nil, fmt.Errorf("serviced: final seal: %w", err)
		}
	}
	s.epoch.Add(1)
	s.closed = true

	rep := &report.Report{Title: s.meta.Title}
	for _, lr := range cm.Loss {
		rep.StreamLoss = append(rep.StreamLoss, report.StreamLossRow{
			App:          lr.App,
			Rank:         lr.Rank,
			Dropped:      lr.Dropped,
			LostInFlight: lr.LostInFlight,
			Shed:         lr.Shed,
		})
	}
	for i, a := range s.apps {
		if a.cum.Callsites != nil {
			for ctx, label := range a.meta.Labels {
				a.cum.Callsites.Label(ctx, label)
			}
		}
		comp := a.cum.Shed
		if comp == nil {
			comp = analysis.NewCompletenessModule()
		}
		rep.Chapters = append(rep.Chapters, &report.Chapter{
			App:          a.meta.Name,
			Procs:        a.meta.Procs,
			WallTime:     time.Duration(cm.Apps[i].WallNs),
			Profiler:     a.cum.Profiler,
			Topology:     a.cum.Topology,
			Density:      a.cum.Density,
			WaitState:    a.cum.Waits,
			Temporal:     a.cum.Temporal,
			Callsites:    a.cum.Callsites,
			Sizes:        a.cum.Sizes,
			Completeness: comp,
			Windows:      a.cum.Windows,
			WindowLag:    a.tracker,
		})
	}
	return rep, nil
}

// shedTotal sums the session's gate-shed events across applications.
func (s *session) shedTotal() int64 {
	var n int64
	for _, a := range s.apps {
		n += a.gate.TotalShed()
	}
	return n
}

// analyzedEvents sums the merged profiles' event counts.
func (s *session) analyzedEvents() int64 {
	var n int64
	for _, a := range s.apps {
		n += a.cum.Profiler.Events()
	}
	return n
}

// windowStats sums the windowed-analysis accounting across applications:
// windows the trackers observed, late events, and the worst-case
// (lowest) per-window completeness bound (1 when the session is not
// windowed or nothing was late). Only tracker state is read — atomics
// and its own mutex — so Status may call this while the connection
// goroutine (and its lanes) ingest.
func (s *session) windowStats() (windows int, late int64, minCompleteness float64) {
	minCompleteness = 1
	for _, a := range s.apps {
		if a.tracker == nil {
			continue
		}
		windows += a.tracker.WindowsObserved()
		late += a.tracker.LateEvents()
		for _, idx := range a.tracker.WindowIndices() {
			if c := a.tracker.Completeness(idx); c < minCompleteness {
				minCompleteness = c
			}
		}
	}
	return
}

// sealedWindows counts the populated windows in the cumulative state.
// Call only from the connection goroutine (the cumulative partials are
// goroutine-owned).
func (s *session) sealedWindows() int {
	var n int
	for _, a := range s.apps {
		if a.cum.Windows != nil {
			n += a.cum.Windows.Len()
		}
	}
	return n
}
