// Package serviced is the profiler-as-a-service daemon: the paper's
// concluding "truly machine wide server" made concrete. A Daemon hosts
// many concurrent profiling sessions, each fed over a byte-stream
// transport (loopback TCP, or anything io.ReadWriteCloser-shaped — an
// in-process net.Pipe works, so the simulated VMPI world remains a
// transport peer, not a special case) speaking the wire package's
// length-prefixed frame protocol.
//
// Session lifecycle: Hello negotiates the pack wire format (the network
// analogue of the vmpi hello tag), Register opens the session, Pack
// frames stream the existing trace pack formats into per-application
// partial profiles (the reduction tree's leaf machinery reused as the
// serving engine), Snapshot/Diff serve incremental report state keyed by
// a monotonic epoch cursor, Close runs the final flush and returns the
// rendered report — byte-identical to the in-process service path for
// the same packs and metadata. Per-session admission (credit windows +
// a quota-driven adapt.Controller with class-level shedding gates) keeps
// one hot tenant from degrading the rest; see admission.go.
package serviced

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"

	"repro/internal/adapt"
	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wire"
)

// DefaultMaxSessions bounds concurrently live sessions.
const DefaultMaxSessions = 64

// Options configures a Daemon. The zero value serves with the defaults
// noted on each field.
type Options struct {
	// MaxSessions caps concurrently live sessions; registrations beyond it
	// are rejected with an error frame (default DefaultMaxSessions).
	MaxSessions int
	// MaxFormat is the highest pack wire format the daemon negotiates
	// (default trace.PackV3).
	MaxFormat int
	// Window is the level-0 per-session credit window in pack frames
	// (default DefaultWindow).
	Window int
	// GovernEvery is the admission governor's observation cadence in packs
	// (default DefaultGovernEvery).
	GovernEvery int
	// SessionBudgetBytes is the per-session ingest quota: volume past it
	// reads as backlog to the session's adaptive controller, which
	// escalates through the PR6 ladder — narrower credit window first,
	// class-level shedding with an audited completeness bound at the top.
	// 0 disables the quota (sessions never escalate or shed).
	SessionBudgetBytes int64
	// Adaptive tunes each session's controller (zero value = adapt
	// defaults; tests shrink the thresholds for fast escalation).
	Adaptive adapt.Config
	// EpochCap bounds the retained sealed-delta log per session (default
	// DefaultEpochCap); older Diff cursors get a full-state resync.
	EpochCap int
	// Workers is the per-session ingest worker-pool size. With Workers > 1
	// each session fans its data packs out to that many lanes folding into
	// lock-free per-app replicas, merged into the session delta at every
	// seal — query results stay byte-identical to the synchronous path
	// (see lanes.go). <= 1 ingests synchronously on the connection
	// goroutine, the seed behaviour.
	Workers int
	// Service, when non-nil, receives every closed session's report via
	// Record — the cross-job metric centralisation the in-process service
	// keeps, now shared by every tenant of the daemon.
	Service *service.Service
	// Telemetry instruments the daemon (nil = free no-ops).
	Telemetry *telemetry.DaemonMetrics
	// Logf, when non-nil, receives connection-level diagnostics.
	Logf func(format string, args ...any)
}

// Status is the daemon's machine-readable state (profilerctl status).
type Status struct {
	SessionsLive   int   `json:"sessions_live"`
	SessionsTotal  int64 `json:"sessions_total"`
	SessionsClosed int64 `json:"sessions_closed"`
	Aborted        int64 `json:"sessions_aborted"`
	Rejected       int64 `json:"sessions_rejected"`
	Packs          int64 `json:"packs"`
	PackBytes      int64 `json:"pack_bytes"`
	Events         int64 `json:"events"`
	ShedEvents     int64 `json:"shed_events"`
	// Workers is the configured per-session ingest pool size (1 =
	// synchronous).
	Workers int `json:"workers"`
	// ReplicaMerges / ReplicaMergeNs total the lane replica merges across
	// retired and live sessions (always zero with Workers <= 1).
	ReplicaMerges  int64 `json:"replica_merges"`
	ReplicaMergeNs int64 `json:"replica_merge_ns"`
	// Sessions lists the live sessions' per-session counters.
	Sessions []SessionStatus `json:"sessions,omitempty"`
	// Service is the attached service's status JSON (absent without one).
	Service json.RawMessage `json:"service,omitempty"`
}

// SessionStatus is one live session's counters inside Status.
type SessionStatus struct {
	ID             uint64 `json:"id"`
	Workers        int    `json:"workers"`
	Epoch          uint64 `json:"epoch"`
	Packs          int64  `json:"packs"`
	Events         int64  `json:"events"`
	ReplicaMerges  int64  `json:"replica_merges"`
	ReplicaMergeNs int64  `json:"replica_merge_ns"`
	// Windows / LateEvents / MinCompleteness surface the windowed
	// analysis (windowed sessions only): windows observed so far, events
	// that arrived after their window should have sealed, and the lowest
	// per-window completeness bound.
	Windows         int     `json:"windows,omitempty"`
	LateEvents      int64   `json:"late_events,omitempty"`
	MinCompleteness float64 `json:"min_completeness,omitempty"`
}

// Daemon hosts concurrent profiling sessions.
type Daemon struct {
	opts Options

	mu     sync.Mutex
	nextID uint64
	live   int
	// liveSess tracks registered, still-open sessions for Status; their
	// counters are atomics, safe to read while their connections ingest.
	liveSess map[uint64]*session
	closed   int64
	aborted  int64
	reject   int64
	packs    int64
	bytes    int64
	events   int64
	shed     int64
	merges   int64
	mergeNs  int64
}

// New builds a daemon.
func New(opts Options) *Daemon {
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = DefaultMaxSessions
	}
	if opts.MaxFormat <= 0 || opts.MaxFormat > trace.PackV3 {
		opts.MaxFormat = trace.PackV3
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	return &Daemon{opts: opts, liveSess: make(map[uint64]*session)}
}

// Serve accepts connections until the listener closes, one goroutine per
// connection. It returns nil when the listener is closed.
func (d *Daemon) Serve(l net.Listener) error {
	for {
		c, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go func() {
			if err := d.ServeConn(c); err != nil {
				d.logf("serviced: %v", err)
			}
		}()
	}
}

// ServeConn drives one connection's session to completion. Exported so
// in-process transports (net.Pipe) serve without a listener.
func (d *Daemon) ServeConn(rw io.ReadWriteCloser) error {
	defer rw.Close()
	c := &conn{d: d, fr: wire.NewReader(rw), bw: bufio.NewWriter(rw)}
	err := c.run()
	if c.sess != nil && !c.sess.closed {
		d.endSession(c.sess, true)
	}
	return err
}

func (d *Daemon) logf(format string, args ...any) {
	if d.opts.Logf != nil {
		d.opts.Logf(format, args...)
	}
}

// Status returns the daemon's current counters (plus the attached
// service's status when one is wired in). Live sessions are listed with
// their per-session replica counters; the aggregate replica totals span
// retired and live sessions.
func (d *Daemon) Status() (Status, error) {
	d.mu.Lock()
	st := Status{
		SessionsLive:   d.live,
		SessionsTotal:  int64(d.nextID),
		SessionsClosed: d.closed,
		Aborted:        d.aborted,
		Rejected:       d.reject,
		Packs:          d.packs,
		PackBytes:      d.bytes,
		Events:         d.events,
		ShedEvents:     d.shed,
		Workers:        d.opts.Workers,
		ReplicaMerges:  d.merges,
		ReplicaMergeNs: d.mergeNs,
	}
	for _, s := range d.liveSess {
		ss := SessionStatus{
			ID:             s.id,
			Workers:        s.workerCount(),
			Epoch:          s.epoch.Load(),
			Packs:          s.packs.Load(),
			Events:         s.events.Load(),
			ReplicaMerges:  s.laneMerges.Load(),
			ReplicaMergeNs: s.laneMergeNs.Load(),
		}
		if w, late, minC := s.windowStats(); w > 0 {
			ss.Windows = w
			ss.LateEvents = late
			ss.MinCompleteness = minC
		}
		st.ReplicaMerges += ss.ReplicaMerges
		st.ReplicaMergeNs += ss.ReplicaMergeNs
		st.Sessions = append(st.Sessions, ss)
	}
	d.mu.Unlock()
	sort.Slice(st.Sessions, func(i, j int) bool { return st.Sessions[i].ID < st.Sessions[j].ID })
	if d.opts.Service != nil {
		sj, err := d.opts.Service.StatusJSON()
		if err != nil {
			return Status{}, err
		}
		st.Service = sj
	}
	return st, nil
}

// StatusJSON marshals Status.
func (d *Daemon) StatusJSON() ([]byte, error) {
	st, err := d.Status()
	if err != nil {
		return nil, err
	}
	return json.Marshal(st)
}

// beginSession admits (or rejects) a new session under the live cap.
func (d *Daemon) beginSession() (uint64, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.live >= d.opts.MaxSessions {
		d.reject++
		d.opts.Telemetry.OnReject()
		return 0, false
	}
	d.nextID++
	d.live++
	d.opts.Telemetry.OnRegister(d.live)
	return d.nextID, true
}

// trackSession publishes a freshly registered session for Status.
func (d *Daemon) trackSession(s *session) {
	d.mu.Lock()
	d.liveSess[s.id] = s
	d.mu.Unlock()
}

// endSession retires a session (closed cleanly or aborted): the lane
// pool is stopped first (so every counter is final), then its accounting
// folds into the daemon totals.
func (d *Daemon) endSession(s *session, aborted bool) {
	s.shutdown()
	d.mu.Lock()
	delete(d.liveSess, s.id)
	d.live--
	if aborted {
		d.aborted++
	} else {
		d.closed++
	}
	d.packs += s.packs.Load()
	if s.gov != nil {
		d.bytes += s.gov.bytesIn
	}
	d.events += s.events.Load()
	d.shed += s.shedTotal()
	d.merges += s.laneMerges.Load()
	d.mergeNs += s.laneMergeNs.Load()
	live := d.live
	d.mu.Unlock()
	d.opts.Telemetry.OnEnd(live, aborted)
	d.opts.Telemetry.OnShed(s.shedTotal())
}

// conn is one connection's protocol state machine.
type conn struct {
	d    *Daemon
	fr   *wire.Reader
	bw   *bufio.Writer
	sess *session
	// granted/received implement the credit window: granted packs are the
	// credits issued (RegisterAck window plus every Credit frame), and a
	// fresh batch is granted exactly when the client exhausts them, so a
	// compliant client is never starved and the window depth — shrunk by
	// the governor under escalation — paces its burst size.
	granted  int64
	received int64
}

func (c *conn) send(typ byte, payload []byte) error {
	if err := wire.WriteFrame(c.bw, typ, payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

// fail sends a terminal error frame; the connection ends after it.
func (c *conn) fail(format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	if err := c.send(wire.TypeError, []byte(msg)); err != nil {
		return fmt.Errorf("serviced: %s (error frame not delivered: %v)", msg, err)
	}
	return errors.New("serviced: " + msg)
}

// run drives the session state machine: Hello, then Register, then any
// number of Pack/Snapshot/Diff/Stats, then Close; the connection may
// only end cleanly at a frame boundary (a mid-frame disconnect aborts
// the session).
func (c *conn) run() error {
	f, err := c.fr.Next()
	if err != nil {
		return fmt.Errorf("serviced: reading hello: %w", err)
	}
	if f.Type != wire.TypeHello {
		return c.fail("expected hello, got frame type %#x", f.Type)
	}
	h, err := wire.ParseHello(f.Payload)
	if err != nil {
		return c.fail("%v", err)
	}
	if h.Proto != wire.ProtoVersion {
		return c.fail("protocol version %d unsupported (want %d)", h.Proto, wire.ProtoVersion)
	}
	format := int(h.MaxFormat)
	if format < trace.PackV1 {
		return c.fail("client announced no usable pack format (%d)", h.MaxFormat)
	}
	if format > c.d.opts.MaxFormat {
		format = c.d.opts.MaxFormat
	}
	if err := c.send(wire.TypeHelloAck, wire.EncodeHelloAck(wire.HelloAck{Proto: wire.ProtoVersion, Format: byte(format)})); err != nil {
		return err
	}

	for {
		f, err := c.fr.Next()
		if err == io.EOF {
			if c.sess != nil && !c.sess.closed {
				return fmt.Errorf("serviced: session %d: connection ended before close", c.sess.id)
			}
			return nil
		}
		if err != nil {
			return fmt.Errorf("serviced: reading frame: %w", err)
		}
		switch f.Type {
		case wire.TypeRegister:
			if c.sess != nil {
				return c.fail("duplicate register on one connection")
			}
			meta, err := wire.ParseSessionMeta(f.Payload)
			if err != nil {
				return c.fail("%v", err)
			}
			id, ok := c.d.beginSession()
			if !ok {
				return c.fail("daemon at capacity (%d live sessions)", c.d.opts.MaxSessions)
			}
			gov, err := newGovernor(c.d.opts.Adaptive, c.d.opts.Window, c.d.opts.GovernEvery, c.d.opts.SessionBudgetBytes)
			if err == nil {
				c.sess, err = newSession(id, format, meta, gov, c.d.opts.EpochCap, c.d.opts.Workers)
			}
			if err != nil {
				c.d.endSession(&session{}, true)
				c.sess = nil
				return c.fail("%v", err)
			}
			c.d.trackSession(c.sess)
			win := gov.window()
			c.granted = int64(win)
			if err := c.send(wire.TypeRegisterAck, wire.EncodeRegisterAck(wire.RegisterAck{Session: id, Window: uint32(win)})); err != nil {
				return err
			}

		case wire.TypePack:
			if err := c.needOpen("pack"); err != nil {
				return err
			}
			src, pack, err := wire.ParsePack(f.Payload)
			if err != nil {
				return c.fail("%v", err)
			}
			if err := c.sess.ingest(src, pack); err != nil {
				return c.fail("session %d: %v", c.sess.id, err)
			}
			c.d.opts.Telemetry.OnPack(len(f.Payload))
			c.received++
			if c.received >= c.granted {
				if over := c.received - c.granted; over > 0 {
					c.d.opts.Telemetry.CreditBacklog(over)
				}
				win := int64(c.sess.gov.window())
				c.granted = c.received + win
				if err := c.send(wire.TypeCredit, wire.EncodeCredit(wire.Credit{Credits: uint32(win), Window: uint32(win)})); err != nil {
					return err
				}
			}

		case wire.TypeSnapshot:
			if err := c.needOpen("snapshot"); err != nil {
				return err
			}
			st, err := c.sess.snapshot()
			if err != nil {
				return c.fail("session %d: %v", c.sess.id, err)
			}
			if err := c.send(wire.TypeState, wire.EncodeState(st)); err != nil {
				return err
			}

		case wire.TypeDiff:
			if err := c.needOpen("diff"); err != nil {
				return err
			}
			dr, err := wire.ParseDiffReq(f.Payload)
			if err != nil {
				return c.fail("%v", err)
			}
			st, err := c.sess.diff(dr.Cursor)
			if err != nil {
				return c.fail("session %d: %v", c.sess.id, err)
			}
			if err := c.send(wire.TypeState, wire.EncodeState(st)); err != nil {
				return err
			}

		case wire.TypeClose:
			if err := c.needOpen("close"); err != nil {
				return err
			}
			cm, err := wire.ParseCloseMeta(f.Payload)
			if err != nil {
				return c.fail("%v", err)
			}
			rep, err := c.sess.close(cm)
			if err != nil {
				return c.fail("session %d: %v", c.sess.id, err)
			}
			var buf bytes.Buffer
			if err := rep.Render(&buf); err != nil {
				return c.fail("session %d: render: %v", c.sess.id, err)
			}
			if c.d.opts.Service != nil {
				c.d.opts.Service.Record(rep)
			}
			c.d.endSession(c.sess, false)
			_, late, _ := c.sess.windowStats()
			fr := wire.FinalReport{
				Session:    c.sess.id,
				Events:     c.sess.analyzedEvents(),
				Packs:      c.sess.packs.Load(),
				Shed:       c.sess.shedTotal(),
				MaxLevel:   c.sess.gov.maxLevel(),
				Windows:    c.sess.sealedWindows(),
				LateEvents: late,
				Rendered:   buf.String(),
			}
			payload, err := wire.EncodeFinalReport(fr)
			if err != nil {
				return c.fail("session %d: %v", c.sess.id, err)
			}
			if err := c.send(wire.TypeReport, payload); err != nil {
				return err
			}

		case wire.TypeStats:
			sj, err := c.d.StatusJSON()
			if err != nil {
				return c.fail("status: %v", err)
			}
			if err := c.send(wire.TypeStatsAck, sj); err != nil {
				return err
			}

		default:
			return c.fail("unexpected frame type %#x", f.Type)
		}
	}
}

// needOpen checks that a session is registered and still open.
func (c *conn) needOpen(op string) error {
	if c.sess == nil {
		return c.fail("%s before register", op)
	}
	if c.sess.closed {
		return c.fail("session %d: %s after close", c.sess.id, op)
	}
	return nil
}
