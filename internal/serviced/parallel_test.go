package serviced

import (
	"testing"

	"repro/internal/client"
	"repro/internal/trace"
)

// TestParallelWorkersByteIdentical is the serving-side golden test for
// the lane pool: the same captured workload replayed against a Workers=1
// daemon and a Workers=4 daemon — with Diff polls and a client-side
// replayer verifying snapshot convergence mid-stream — must produce
// byte-identical final reports, both equal to the in-process path. Runs
// for v1 packs (board-format decode on the lanes) and v3 (per-writer
// stream decoders on the lanes).
func TestParallelWorkersByteIdentical(t *testing.T) {
	spec := [4]int{1, 'A', 16, 2} // LU.A@16
	for _, pack := range []int{trace.PackV1, trace.PackV3} {
		opts := testOpts
		opts.PackVersion = pack
		cp := capture(t, opts, spec)
		want := inProcessReport(t, opts, spec)
		for _, workers := range []int{1, 4} {
			d, addr := startTCP(t, Options{Workers: workers})
			c, err := client.Dial(addr, cp.PackVersion)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := c.Replay(cp, 3) // Diff every 3 packs + final Verify
			if err != nil {
				t.Fatalf("v%d workers=%d: %v", pack, workers, err)
			}
			c.Shutdown()
			if rep.Rendered != want {
				t.Errorf("v%d workers=%d report diverged from in-process path", pack, workers)
			}
			st, err := d.Status()
			if err != nil {
				t.Fatal(err)
			}
			if st.Workers != workers {
				t.Errorf("status workers = %d, want %d", st.Workers, workers)
			}
			if workers > 1 && st.ReplicaMerges == 0 {
				t.Errorf("v%d workers=%d: no replica merges recorded", pack, workers)
			}
			if workers == 1 && st.ReplicaMerges != 0 {
				t.Errorf("v%d workers=1: %d replica merges on the synchronous path", pack, st.ReplicaMerges)
			}
		}
	}
}

// TestParallelSessionStatus checks the live-session view: while a
// Workers>1 session is open, Status lists it with its per-session epoch,
// pack and replica-merge counters; after close the list empties and the
// merges fold into the daemon aggregate.
func TestParallelSessionStatus(t *testing.T) {
	opts := testOpts
	opts.PackVersion = trace.PackV2
	cp := capture(t, opts, [4]int{0, 'A', 16, 2})

	d, addr := startTCP(t, Options{Workers: 2})
	c, err := client.Dial(addr, cp.PackVersion)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	id, err := c.Register(client.SessionMetaFromCapture(cp))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range cp.Packs {
		if err := c.SendPack(uint32(p.Src), p.Data); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot forces a seal — the lane flush barrier — so the merges are
	// recorded by the time the reply arrives.
	if _, err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}
	st, err := d.Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Sessions) != 1 {
		t.Fatalf("live sessions = %d, want 1", len(st.Sessions))
	}
	ss := st.Sessions[0]
	if ss.ID != id || ss.Workers != 2 {
		t.Fatalf("session status = %+v", ss)
	}
	if ss.Epoch == 0 || ss.Packs == 0 || ss.Events == 0 {
		t.Fatalf("session counters empty: %+v", ss)
	}
	if ss.ReplicaMerges == 0 || ss.ReplicaMergeNs == 0 {
		t.Fatalf("session replica counters empty: %+v", ss)
	}
	if st.ReplicaMerges < ss.ReplicaMerges {
		t.Fatalf("aggregate merges %d < live session's %d", st.ReplicaMerges, ss.ReplicaMerges)
	}

	if _, err := c.Close(client.CloseMetaFromCapture(cp)); err != nil {
		t.Fatal(err)
	}
	st, err = d.Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Sessions) != 0 {
		t.Fatalf("closed session still listed: %+v", st.Sessions)
	}
	if st.ReplicaMerges < ss.ReplicaMerges {
		t.Fatalf("retired merges %d lost the session's %d", st.ReplicaMerges, ss.ReplicaMerges)
	}
}

// TestParallelLaneDecodeError pins async error surfacing: a corrupt data
// pack folded on a lane must fail the session at the next barrier (or
// enqueue), not be silently dropped.
func TestParallelLaneDecodeError(t *testing.T) {
	opts := testOpts
	opts.PackVersion = trace.PackV2
	cp := capture(t, opts, [4]int{0, 'A', 16, 2})

	d, _ := startTCP(t, Options{Workers: 2})
	c := pipeClient(t, d, cp.PackVersion)
	if _, err := c.Register(client.SessionMetaFromCapture(cp)); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), cp.Packs[0].Data...)
	bad[len(bad)-1] ^= 0xff // corrupt the record area, header stays valid
	if err := c.SendPack(uint32(cp.Packs[0].Src), bad); err != nil {
		t.Fatal(err)
	}
	// The decode error surfaces at the seal barrier the snapshot forces.
	if _, err := c.Snapshot(); err == nil {
		t.Fatal("snapshot after corrupt pack succeeded")
	}
}
