package des

import (
	"testing"
	"time"
)

// The scheduling hot paths must not allocate per event: Sleep/Unpark carry
// the process pointer in the event, AtCall carries a shared function plus a
// pre-boxed argument, and fired events recycle through the free list. The
// tests below run whole simulations and bound the TOTAL allocation count,
// so the fixed setup cost (simulator, process, goroutine, channels) is
// amortized over enough events that any per-event allocation would blow
// the budget by orders of magnitude.

func TestSleepAllocsAmortized(t *testing.T) {
	const sleeps = 10000
	allocs := testing.AllocsPerRun(3, func() {
		s := New(1)
		s.Spawn("sleeper", func(p *Proc) {
			for i := 0; i < sleeps; i++ {
				p.Sleep(time.Microsecond)
			}
		})
		if err := s.Run(); err != nil {
			t.Error(err)
		}
	})
	// Setup costs a few dozen allocations plus the heap's growth to its
	// high-water mark; 10k sleeps at even one allocation each would be
	// 10000+.
	if allocs > 200 {
		t.Errorf("simulation with %d sleeps allocated %.0f objects, want <= 200 (per-sleep path must be allocation-free)", sleeps, allocs)
	}
}

func TestAtCallAllocsAmortized(t *testing.T) {
	const fires = 10000
	allocs := testing.AllocsPerRun(3, func() {
		s := New(1)
		n := 0
		var step func(any)
		step = func(a any) {
			n++
			if n < fires {
				s.AtCall(s.Now()+1, step, a)
			}
		}
		arg := &n // any pre-boxed pointer; boxing happens once, here
		s.AtCall(0, step, arg)
		if err := s.Run(); err != nil {
			t.Error(err)
		}
	})
	if allocs > 100 {
		t.Errorf("simulation with %d AtCall events allocated %.0f objects, want <= 100 (AtCall path must be allocation-free)", fires, allocs)
	}
}

// TestEventFreeListRecycles pins the free-list behavior directly: fired
// events land on the free list with every reference cleared, so recycling
// cannot retain dead processes or closures.
func TestEventFreeListRecycles(t *testing.T) {
	s := New(1)
	s.Spawn("p", func(p *Proc) { p.Sleep(10 * time.Nanosecond) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.free == nil {
		t.Fatal("no events on the free list after a run")
	}
	got := s.alloc(7)
	if got.proc != nil || got.fn != nil || got.arg != nil || got.fire != nil {
		t.Errorf("recycled event carries stale references: %+v", got)
	}
}
