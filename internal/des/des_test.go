package des

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	s := New(1)
	var end Time
	s.Spawn("a", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		p.Sleep(5 * time.Millisecond)
		end = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if want := DurationToTime(15 * time.Millisecond); end != want {
		t.Fatalf("end = %v, want %v", end, want)
	}
}

func TestZeroSleepYields(t *testing.T) {
	s := New(1)
	var order []string
	s.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Sleep(0)
		order = append(order, "a2")
	})
	s.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// b1 must run between a's two segments: zero-sleep yields.
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSimultaneousEventsFireInScheduleOrder(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Millisecond, func() { order = append(order, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestCondSignalWakesFIFO(t *testing.T) {
	s := New(1)
	var c Cond
	var woke []string
	for _, name := range []string{"p0", "p1", "p2"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			c.Wait(p, "test")
			woke = append(woke, name)
		})
	}
	s.Spawn("sig", func(p *Proc) {
		p.Sleep(time.Millisecond) // let everyone park first
		c.Signal()
		p.Sleep(time.Millisecond)
		c.Broadcast()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 || woke[0] != "p0" {
		t.Fatalf("woke = %v, want p0 first then all", woke)
	}
}

func TestDeadlockDetected(t *testing.T) {
	s := New(1)
	var c Cond
	s.Spawn("stuck", func(p *Proc) {
		c.Wait(p, "never-signalled")
	})
	err := s.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 || de.Blocked[0] != "stuck: never-signalled" {
		t.Fatalf("blocked = %v", de.Blocked)
	}
}

func TestParkUnpark(t *testing.T) {
	s := New(1)
	var target *Proc
	done := false
	target = s.Spawn("sleeper", func(p *Proc) {
		p.Park("waiting for friend")
		done = true
	})
	s.Spawn("waker", func(p *Proc) {
		p.Sleep(3 * time.Millisecond)
		target.Unpark()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("sleeper never resumed")
	}
}

func TestSpawnFromProcess(t *testing.T) {
	s := New(1)
	sum := 0
	s.Spawn("parent", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			i := i
			s.Spawn("child", func(p *Proc) {
				p.Sleep(time.Duration(i) * time.Millisecond)
				sum += i
			})
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if sum != 6 {
		t.Fatalf("sum = %d, want 6", sum)
	}
}

func TestHaltStopsRun(t *testing.T) {
	s := New(1)
	ticks := 0
	s.Spawn("ticker", func(p *Proc) {
		for {
			p.Sleep(time.Millisecond)
			ticks++
			if ticks == 5 {
				s.Halt()
				p.Park("halted")
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []Time {
		s := New(42)
		var stamps []Time
		for i := 0; i < 8; i++ {
			s.Spawn("p", func(p *Proc) {
				for j := 0; j < 4; j++ {
					d := time.Duration(s.Rand().Intn(1000)) * time.Microsecond
					p.Sleep(d)
					stamps = append(stamps, p.Now())
				}
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return stamps
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stamp %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestQueueSerializes(t *testing.T) {
	var q Queue
	// Two jobs arriving at t=0, 10ms each: second completes at 20ms.
	c1 := q.Next(0, 10*time.Millisecond)
	c2 := q.Next(0, 10*time.Millisecond)
	if c1 != DurationToTime(10*time.Millisecond) {
		t.Fatalf("c1 = %v", c1)
	}
	if c2 != DurationToTime(20*time.Millisecond) {
		t.Fatalf("c2 = %v", c2)
	}
	// A job arriving after the queue drained starts immediately.
	c3 := q.Next(DurationToTime(time.Second), time.Millisecond)
	if c3 != DurationToTime(time.Second+time.Millisecond) {
		t.Fatalf("c3 = %v", c3)
	}
}

// Property: queue completions are monotonically non-decreasing and each
// completion is at least arrival+service.
func TestQueueMonotoneProperty(t *testing.T) {
	f := func(arrivals []uint32, services []uint16) bool {
		var q Queue
		var prev Time
		n := len(arrivals)
		if len(services) < n {
			n = len(services)
		}
		at := Time(0)
		for i := 0; i < n; i++ {
			at += Time(arrivals[i] % 1e6) // non-decreasing arrivals
			svc := time.Duration(services[i]) * time.Nanosecond
			c := q.Next(at, svc)
			if c < prev || c < at+DurationToTime(svc) {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSecondsToDuration(t *testing.T) {
	if d := SecondsToDuration(1.5); d != 1500*time.Millisecond {
		t.Fatalf("d = %v", d)
	}
	if d := SecondsToDuration(-3); d != 0 {
		t.Fatalf("negative should clamp to 0, got %v", d)
	}
	if d := SecondsToDuration(1e300); d <= 0 {
		t.Fatalf("huge value should saturate positive, got %v", d)
	}
}

func TestTimeConversions(t *testing.T) {
	tm := DurationToTime(2500 * time.Millisecond)
	if s := tm.Seconds(); s != 2.5 {
		t.Fatalf("Seconds = %v", s)
	}
	if d := tm.Duration(); d != 2500*time.Millisecond {
		t.Fatalf("Duration = %v", d)
	}
}

func TestAccessorsAndSleepUntil(t *testing.T) {
	s := New(9)
	var c Cond
	s.Spawn("worker", func(p *Proc) {
		if p.Name() != "worker" || p.Sim() != s {
			t.Error("accessors wrong")
		}
		p.SleepUntil(DurationToTime(5 * time.Millisecond))
		if p.Now() != DurationToTime(5*time.Millisecond) {
			t.Errorf("SleepUntil landed at %v", p.Now())
		}
		p.SleepUntil(DurationToTime(time.Millisecond)) // past: no-op in time
		if p.Now() != DurationToTime(5*time.Millisecond) {
			t.Errorf("past SleepUntil moved the clock to %v", p.Now())
		}
	})
	s.At(DurationToTime(2*time.Millisecond), func() {
		if s.Now() != DurationToTime(2*time.Millisecond) {
			t.Error("At fired at the wrong time")
		}
	})
	if c.Waiting() != 0 {
		t.Error("empty cond should report no waiters")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Now() != DurationToTime(5*time.Millisecond) {
		t.Fatalf("final time = %v", s.Now())
	}
}

func TestProcPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("process panic should propagate out of Run")
		}
	}()
	s := New(1)
	s.Spawn("bomb", func(p *Proc) {
		p.Sleep(time.Millisecond)
		panic("boom")
	})
	_ = s.Run()
}

func TestUnparkDeadProcIsNoop(t *testing.T) {
	// With fault injection a process can die between a waker's decision and
	// the wake, so a stale Unpark must be harmless.
	s := New(1)
	var target *Proc
	target = s.Spawn("shortlived", func(p *Proc) {})
	s.Spawn("waker", func(p *Proc) {
		p.Sleep(time.Millisecond) // target has terminated by now
		target.Unpark()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !target.Dead() {
		t.Fatal("target should be dead")
	}
}

func TestKillParkedProc(t *testing.T) {
	s := New(1)
	var victim *Proc
	resumed := false
	victim = s.Spawn("victim", func(p *Proc) {
		p.Park("waiting forever")
		resumed = true
	})
	s.Spawn("killer", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		victim.Kill()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err) // the kill must clear the would-be deadlock
	}
	if resumed {
		t.Fatal("killed process must not resume past its blocking call")
	}
	if !victim.Dead() || !victim.Killed() {
		t.Fatalf("victim dead=%v killed=%v, want true/true", victim.Dead(), victim.Killed())
	}
}

func TestKillSleepingProcStopsClock(t *testing.T) {
	s := New(1)
	var victim *Proc
	victim = s.Spawn("victim", func(p *Proc) {
		p.Sleep(time.Hour)
	})
	s.Spawn("killer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		victim.Kill()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// The victim's hour-long sleep event still fires (and is ignored), so
	// the clock runs to the hour mark, but the victim is long dead.
	if !victim.Dead() {
		t.Fatal("victim should be dead")
	}
}

func TestKillBeforeFirstRun(t *testing.T) {
	s := New(1)
	ran := false
	p := s.Spawn("stillborn", func(p *Proc) { ran = true })
	p.Kill()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("a process killed before its first transfer must not run")
	}
	if !p.Dead() {
		t.Fatal("killed process should be dead")
	}
}

func TestKillCondWaiterThenSignal(t *testing.T) {
	// A Signal after a waiter died must not be lost on the corpse: the next
	// live waiter gets it.
	s := New(1)
	var c Cond
	var first *Proc
	secondWoke := false
	first = s.Spawn("first", func(p *Proc) {
		c.Wait(p, "first wait")
		t.Error("killed waiter must not wake")
	})
	s.Spawn("second", func(p *Proc) {
		p.Sleep(time.Millisecond)
		c.Wait(p, "second wait")
		secondWoke = true
	})
	s.Spawn("driver", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		first.Kill()
		p.Sleep(time.Millisecond)
		c.Signal()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !secondWoke {
		t.Fatal("signal was lost on a dead waiter")
	}
}

func TestQueueFreeAtAndReset(t *testing.T) {
	var q Queue
	q.Next(0, 5*time.Millisecond)
	if q.FreeAt() != DurationToTime(5*time.Millisecond) {
		t.Fatalf("FreeAt = %v", q.FreeAt())
	}
	q.Reset()
	if q.FreeAt() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestDeadlockErrorMessage(t *testing.T) {
	err := &DeadlockError{Now: DurationToTime(time.Second), Blocked: []string{"a: x"}}
	if msg := err.Error(); msg == "" || !strings.Contains(msg, "1 process(es)") {
		t.Fatalf("message = %q", msg)
	}
}
