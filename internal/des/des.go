// Package des implements a deterministic discrete-event simulation kernel.
//
// The kernel drives a set of processes (Proc) in virtual time. Each process
// runs in its own goroutine, but the scheduler executes exactly one process
// at a time and hands control back and forth with a strict rendezvous, so a
// simulation is fully deterministic: given the same seed and the same
// program, every run produces the same event ordering and the same virtual
// timestamps.
//
// The package provides the primitives the MPI runtime model is built on:
//
//   - Simulator: the event queue and virtual clock.
//   - Proc: a coroutine-style simulated process (Sleep, Park, Now).
//   - Cond: a condition variable in virtual time.
//   - Queue: a FIFO server used for busy-until bandwidth accounting
//     (NIC ports, filesystem service, ...).
//
// Virtual time is measured in integer nanoseconds (Time). Durations use
// time.Duration so call sites read naturally.
package des

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Seconds converts a virtual time to seconds as a float64.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Duration converts a virtual time span to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// DurationToTime converts a duration into the Time scale.
func DurationToTime(d time.Duration) Time { return Time(d.Nanoseconds()) }

// SecondsToDuration converts a floating-point number of seconds into a
// duration, saturating instead of overflowing for absurdly large values.
func SecondsToDuration(s float64) time.Duration {
	const maxSec = float64(1<<62) / 1e9
	if s >= maxSec {
		return time.Duration(1 << 62)
	}
	if s <= 0 {
		return 0
	}
	return time.Duration(s * 1e9)
}

// event is a scheduled occurrence. Exactly one of proc, fn, or fire is set:
// proc transfers control to a parked process (the overwhelmingly common
// case — Sleep, Unpark, Spawn), fn runs a caller-supplied function with a
// pre-boxed argument (AtCall, used by message delivery), and fire runs an
// arbitrary closure (After/At). The specializations exist so the hot
// scheduling paths allocate neither a closure nor, thanks to the
// simulator's free list, the event itself. Callbacks run in the
// scheduler's goroutine; they must not block other than by transferring
// control to a process.
type event struct {
	at   Time
	seq  uint64
	proc *Proc
	fn   func(any)
	arg  any
	fire func()
	next *event // free-list link while recycled
}

// less orders events by (time, sequence), so simultaneous events fire in
// schedule order.
func (e *event) less(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventHeap is a 4-ary min-heap of events. A wider node shrinks the tree:
// compared with the binary container/heap it halves the sift-down depth and
// keeps siblings on one cache line, and the hand-rolled methods avoid
// container/heap's interface dispatch on every comparison. pop nils the
// vacated tail slot so a fired event is not retained by the backing array.
type eventHeap []*event

func (h *eventHeap) push(ev *event) {
	q := append(*h, ev)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !q[i].less(q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	*h = q
}

func (h *eventHeap) pop() *event {
	q := *h
	n := len(q) - 1
	top := q[0]
	q[0] = q[n]
	q[n] = nil
	q = q[:n]
	*h = q
	i := 0
	for {
		c := i*4 + 1
		if c >= n {
			break
		}
		m := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if q[j].less(q[m]) {
				m = j
			}
		}
		if !q[m].less(q[i]) {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	return top
}

// Simulator owns the virtual clock and the event queue. Create one with New,
// spawn processes with Spawn, then call Run.
type Simulator struct {
	now    Time
	queue  eventHeap
	seq    uint64
	rng    *rand.Rand
	procs  map[*Proc]struct{}
	live   int
	yield  chan yieldMsg
	ran    bool
	halted bool
	// free is the event free list: fired events are recycled here instead
	// of being left to the garbage collector, so steady-state scheduling
	// (Sleep, Unpark, message delivery) allocates nothing.
	free *event
}

type yieldMsg struct {
	done  bool
	panic any
}

// New creates a simulator whose internal randomness (used by Rand) is seeded
// with seed. Two simulators with equal seeds and equal programs produce
// identical runs.
func New(seed int64) *Simulator {
	return &Simulator{
		rng:   rand.New(rand.NewSource(seed)),
		procs: make(map[*Proc]struct{}),
		yield: make(chan yieldMsg),
	}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulator's deterministic random source. It must only be
// used from process context or event callbacks (never concurrently).
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Halt stops the simulation: Run returns once the currently executing
// process parks. Remaining events are discarded.
func (s *Simulator) Halt() { s.halted = true }

// alloc takes an event from the free list (or the allocator) and stamps
// its (time, sequence) key, clamping past times to now.
func (s *Simulator) alloc(at Time) *event {
	ev := s.free
	if ev != nil {
		s.free = ev.next
		ev.next = nil
	} else {
		ev = &event{}
	}
	if at < s.now {
		at = s.now
	}
	s.seq++
	ev.at, ev.seq = at, s.seq
	return ev
}

// recycle returns a fired event to the free list.
func (s *Simulator) recycle(ev *event) {
	ev.proc, ev.fn, ev.arg, ev.fire = nil, nil, nil, nil
	ev.next = s.free
	s.free = ev
}

// schedule registers fn to run at time at. If at is before the current time
// it is clamped to now.
func (s *Simulator) schedule(at Time, fn func()) {
	ev := s.alloc(at)
	ev.fire = fn
	s.queue.push(ev)
}

// scheduleProc registers a control transfer to p at time at. Unlike
// schedule it captures no closure: the event carries the process pointer
// directly, so the Sleep/Unpark hot path is allocation-free.
func (s *Simulator) scheduleProc(at Time, p *Proc) {
	ev := s.alloc(at)
	ev.proc = p
	s.queue.push(ev)
}

// After schedules fn to run d after the current virtual time. fn runs in
// scheduler context: it may wake processes but must not itself block.
func (s *Simulator) After(d time.Duration, fn func()) {
	s.schedule(s.now+DurationToTime(d), fn)
}

// At schedules fn to run at absolute virtual time at.
func (s *Simulator) At(at Time, fn func()) { s.schedule(at, fn) }

// AtCall schedules fn(arg) at absolute virtual time at. It exists for hot
// callers (message delivery) that would otherwise allocate a fresh closure
// per call: a shared top-level fn plus an already-heap-allocated arg
// schedules with zero allocations once the free list is warm.
func (s *Simulator) AtCall(at Time, fn func(any), arg any) {
	ev := s.alloc(at)
	ev.fn, ev.arg = fn, arg
	s.queue.push(ev)
}

// Proc is a simulated process. All its methods must be called from the
// process's own goroutine (inside the function passed to Spawn), except
// Kill, which may be called from scheduler context or another process.
type Proc struct {
	sim    *Simulator
	name   string
	resume chan struct{}
	parked bool
	dead   bool
	killed bool
	// blockedOn is a human-readable description of the current blocking
	// call, reported when the simulation deadlocks.
	blockedOn string
}

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Dead reports whether the process has terminated (returned, panicked, or
// been killed).
func (p *Proc) Dead() bool { return p.dead }

// Killed reports whether Kill has been requested on the process (it may
// not have unwound yet).
func (p *Proc) Killed() bool { return p.killed }

// Sim returns the owning simulator.
func (p *Proc) Sim() *Simulator { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

// Spawn creates a process executing fn and schedules its start at the
// current virtual time. It may be called before Run or from a running
// process.
func (s *Simulator) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{sim: s, name: name, resume: make(chan struct{})}
	s.procs[p] = struct{}{}
	s.live++
	go func() {
		<-p.resume // wait for first transfer from the scheduler
		defer func() {
			p.dead = true
			s.live--
			delete(s.procs, p)
			if r := recover(); r != nil {
				if _, ok := r.(killSignal); !ok {
					s.yield <- yieldMsg{done: true, panic: r}
					return
				}
			}
			s.yield <- yieldMsg{done: true}
		}()
		if !p.killed {
			fn(p)
		}
	}()
	s.scheduleProc(s.now, p)
	return p
}

// killSignal unwinds a killed process's stack from inside park. It is
// recognized (and swallowed) by Spawn's recover, so a kill terminates the
// process cleanly instead of surfacing as a simulation panic.
type killSignal struct{}

// Kill terminates the process at its next scheduling point: a parked or
// sleeping process unwinds without ever resuming its blocking call, and a
// process killed before its first transfer never runs. Killing a dead or
// already-killed process is a no-op. Kill models fail-stop faults — the
// process simply stops computing and communicating; any cleanup its stack
// would have done does not happen.
func (p *Proc) Kill() {
	if p.dead || p.killed {
		return
	}
	p.killed = true
	s := p.sim
	s.scheduleProc(s.now, p)
}

// transfer hands the scheduler's control to p and waits until p parks or
// terminates. Runs in scheduler context.
func (s *Simulator) transfer(p *Proc) {
	if p.dead {
		return
	}
	p.parked = false
	p.resume <- struct{}{}
	msg := <-s.yield
	if msg.panic != nil {
		panic(fmt.Sprintf("des: process %q panicked: %v", p.name, msg.panic))
	}
}

// park blocks the process until the scheduler transfers control back. If
// the process was killed while blocked, park never returns: the stack
// unwinds via killSignal and Spawn's recover terminates the process.
func (p *Proc) park(why string) {
	p.parked = true
	p.blockedOn = why
	p.sim.yield <- yieldMsg{}
	<-p.resume
	if p.killed {
		panic(killSignal{})
	}
	p.blockedOn = ""
}

// Sleep advances the process's virtual time by d. A non-positive d yields
// control without advancing time, which still gives other ready processes a
// chance to run at the same timestamp.
func (p *Proc) Sleep(d time.Duration) {
	s := p.sim
	s.scheduleProc(s.now+DurationToTime(d), p)
	p.park("sleep")
}

// SleepUntil advances the process's virtual time to at (no-op if at is in
// the past).
func (p *Proc) SleepUntil(at Time) {
	s := p.sim
	s.scheduleProc(at, p)
	p.park("sleep-until")
}

// Park blocks the process indefinitely; some other process or event callback
// must call Unpark to resume it. why is reported in deadlock diagnostics.
func (p *Proc) Park(why string) { p.park(why) }

// Unpark schedules p to resume at the current virtual time. It must be
// called from scheduler context or from another (currently running)
// process. Unparking a dead process is a no-op: with fault injection a
// process can die between a waker's decision and the wake (transfer
// already guards against resuming the dead), so a stale wake must be
// harmless rather than a panic.
func (p *Proc) Unpark() {
	if p.dead {
		return
	}
	s := p.sim
	s.scheduleProc(s.now, p)
}

// DeadlockError is returned by Run when no events remain but live processes
// are still blocked.
type DeadlockError struct {
	// Now is the virtual time at which the simulation stalled.
	Now Time
	// Blocked lists "name: reason" for every parked process.
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("des: deadlock at t=%v: %d process(es) blocked: %v",
		e.Now.Duration(), len(e.Blocked), e.Blocked)
}

// Run executes the simulation until the event queue drains or Halt is
// called. It returns a *DeadlockError if processes remain blocked with no
// pending events, and nil otherwise. Run must be called exactly once.
func (s *Simulator) Run() error {
	if s.ran {
		panic("des: Run called twice")
	}
	s.ran = true
	for len(s.queue) > 0 && !s.halted {
		ev := s.queue.pop()
		s.now = ev.at
		switch {
		case ev.proc != nil:
			s.transfer(ev.proc)
		case ev.fn != nil:
			ev.fn(ev.arg)
		default:
			ev.fire()
		}
		s.recycle(ev)
	}
	if !s.halted && s.live > 0 {
		blocked := make([]string, 0, s.live)
		for p := range s.procs {
			blocked = append(blocked, p.name+": "+p.blockedOn)
		}
		sort.Strings(blocked)
		return &DeadlockError{Now: s.now, Blocked: blocked}
	}
	return nil
}

// Cond is a condition variable in virtual time: processes Wait on it, and
// other processes (or event callbacks) Signal or Broadcast to wake them.
// There is no separate mutex: the simulation's one-process-at-a-time
// execution makes state changes atomic between blocking calls.
type Cond struct {
	waiters []*Proc
}

// Wait parks the calling process until Signal or Broadcast wakes it. As with
// sync.Cond, the caller must re-check its predicate in a loop.
func (c *Cond) Wait(p *Proc, why string) {
	c.waiters = append(c.waiters, p)
	p.park(why)
}

// Signal wakes one waiting process, if any (FIFO order). Waiters that died
// while parked (killed processes) are discarded so the signal is not lost
// on a corpse.
func (c *Cond) Signal() {
	for len(c.waiters) > 0 {
		p := c.waiters[0]
		copy(c.waiters, c.waiters[1:])
		c.waiters = c.waiters[:len(c.waiters)-1]
		if p.dead {
			continue
		}
		p.Unpark()
		return
	}
}

// Broadcast wakes every waiting process.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, p := range ws {
		p.Unpark()
	}
}

// Waiting reports how many processes are currently parked on the condition.
func (c *Cond) Waiting() int { return len(c.waiters) }

// Queue models a single FIFO server with busy-until accounting: each job
// occupies the server for its service duration, starting no earlier than the
// completion of the previous job. It is the building block for bandwidth
// pipes (NIC ports, filesystem streams) where we need completion times but
// no process blocking.
type Queue struct {
	freeAt Time
}

// Next returns the completion time of a job arriving at 'arrive' with the
// given service duration, and advances the server's busy-until time.
func (q *Queue) Next(arrive Time, service time.Duration) Time {
	start := arrive
	if q.freeAt > start {
		start = q.freeAt
	}
	q.freeAt = start + DurationToTime(service)
	return q.freeAt
}

// FreeAt reports when the server becomes idle.
func (q *Queue) FreeAt() Time { return q.freeAt }

// Reset makes the server idle immediately.
func (q *Queue) Reset() { q.freeAt = 0 }
