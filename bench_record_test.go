package repro

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/exp"
)

// fig14Baseline is the pre-optimization allocation profile of
// BenchmarkFig14StreamThroughput (container/heap event queue, per-call
// closures and messages, no buffer recycling), measured with
// `go test -bench=Fig14 -benchtime=1x -benchmem` at the commit preceding
// the parallel-engine/allocation PR. The recorder asserts the optimized
// hot paths stay well under these counts.
var fig14Baseline = map[[2]int]int64{ // {writers, ratio} -> allocs/op
	{64, 1}: 53370, {64, 4}: 60931, {64, 16}: 91973, {64, 32}: 50099,
	{256, 1}: 215306, {256, 4}: 239255, {256, 16}: 358092, {256, 32}: 200920,
	{1024, 1}: 872240, {1024, 4}: 953253, {1024, 16}: 1345596, {1024, 32}: 810932,
}

type benchPoint struct {
	Writers          int     `json:"writers"`
	Ratio            int     `json:"ratio"`
	NsPerOp          int64   `json:"ns_per_op"`
	AllocsPerOp      int64   `json:"allocs_per_op"`
	BytesPerOp       int64   `json:"bytes_per_op"`
	GBPerSec         float64 `json:"gb_per_s"` // simulated stream throughput
	BaselineAllocs   int64   `json:"baseline_allocs_per_op"`
	AllocReductionPc float64 `json:"alloc_reduction_pct"`
}

type benchRecord struct {
	Benchmark string       `json:"benchmark"`
	Scale     string       `json:"scale"`
	GoVersion string       `json:"go_version"`
	Points    []benchPoint `json:"points"`
}

// TestRecordFig14Bench runs the Figure 14 grid once per point (the
// -benchtime=1x protocol) and writes host-performance numbers — ns/op,
// allocs/op, bytes/op, plus the simulated GB/s — to results/BENCH_PR2.json.
// It is the CI bench job's recorder and is skipped unless RECORD_BENCH is
// set, so regular test runs stay read-only. Independently of recording, it
// asserts the PR's acceptance bound: every point's allocs/op at least 40 %
// below the pre-optimization baseline.
func TestRecordFig14Bench(t *testing.T) {
	record := os.Getenv("RECORD_BENCH") != ""
	if !record && testing.Short() {
		t.Skip("short mode and RECORD_BENCH unset")
	}
	p := exp.Tera100()
	rec := benchRecord{
		Benchmark: "BenchmarkFig14StreamThroughput",
		Scale:     "16MB per writer, 1MB blocks (benchtime=1x)",
		GoVersion: runtime.Version(),
	}
	var before, after runtime.MemStats
	for _, writers := range []int{64, 256, 1024} {
		for _, ratio := range []int{1, 4, 16, 32} {
			runtime.GC()
			runtime.ReadMemStats(&before)
			start := time.Now()
			pt, err := exp.StreamThroughput(p, writers, ratio, 16<<20, 1<<20)
			elapsed := time.Since(start)
			runtime.ReadMemStats(&after)
			if err != nil {
				t.Fatalf("writers=%d ratio=%d: %v", writers, ratio, err)
			}
			base := fig14Baseline[[2]int{writers, ratio}]
			bp := benchPoint{
				Writers:        writers,
				Ratio:          ratio,
				NsPerOp:        elapsed.Nanoseconds(),
				AllocsPerOp:    int64(after.Mallocs - before.Mallocs),
				BytesPerOp:     int64(after.TotalAlloc - before.TotalAlloc),
				GBPerSec:       pt.Throughput / 1e9,
				BaselineAllocs: base,
			}
			bp.AllocReductionPc = 100 * (1 - float64(bp.AllocsPerOp)/float64(base))
			// The acceptance bound is >= 40 % fewer allocations than the
			// recorded baseline; the measured reduction is ~85-95 %, so the
			// margin absorbs cross-machine variation in goroutine/runtime
			// bookkeeping allocations.
			if bp.AllocReductionPc < 40 {
				t.Errorf("writers=%d ratio=%d: %d allocs/op vs baseline %d (%.1f%% reduction, want >= 40%%)",
					writers, ratio, bp.AllocsPerOp, base, bp.AllocReductionPc)
			}
			rec.Points = append(rec.Points, bp)
		}
	}
	if !record {
		return
	}
	buf, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("results", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("results/BENCH_PR2.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote results/BENCH_PR2.json (%d points)", len(rec.Points))
}
