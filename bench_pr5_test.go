package repro

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/nas"
)

type treePoint struct {
	Topology           string  `json:"topology"`
	Levels             int     `json:"levels"`
	Fanin              int     `json:"fanin"`
	FlushPacks         int     `json:"flush_packs"`
	AggregatorRanks    int     `json:"aggregator_ranks"`
	AppSeconds         float64 `json:"app_seconds"`
	AnalyzedEvents     int64   `json:"analyzed_events"`
	RootIngestBytes    int64   `json:"root_ingest_bytes"`
	RootPosts          int64   `json:"root_posts"`
	RootIngestRate     float64 `json:"root_ingest_bytes_per_s"`
	IngestReductionPct float64 `json:"ingest_reduction_pct"`
	ReducerMerges      int64   `json:"reducer_merges"`
	MatchesFlat        bool    `json:"matches_flat"`
}

type treeFaultPoint struct {
	Topology        string  `json:"topology"`
	KilledLocal     int     `json:"killed_local"`
	KillAtMs        float64 `json:"kill_at_ms"`
	CompletenessPct float64 `json:"completeness_pct"`
	Reparented      int64   `json:"reparented_blocks"`
	UpFailovers     int64   `json:"up_failovers"`
	UpQuarantines   int64   `json:"up_quarantines"`
	UpDropped       int64   `json:"up_dropped"`
	ReportProduced  bool    `json:"report_produced"`
}

type benchRecordPR5 struct {
	Benchmark string `json:"benchmark"`
	Workload  string `json:"workload"`
	GoVersion string `json:"go_version"`
	// SweepV1 streams the seed's fixed 256-byte records; SweepV2 the
	// compact delta+varint packs of PR 4. Each sweep's first point is its
	// own flat baseline.
	SweepV1 []treePoint    `json:"sweep_v1"`
	SweepV2 []treePoint    `json:"sweep_v2"`
	Fault   treeFaultPoint `json:"aggregator_kill"`
}

func toTreePoints(pts []exp.TreePoint) []treePoint {
	out := make([]treePoint, 0, len(pts))
	for _, pt := range pts {
		out = append(out, treePoint{
			Topology:           pt.Config.String(),
			Levels:             pt.Config.Levels,
			Fanin:              pt.Config.Fanin,
			FlushPacks:         pt.Config.FlushPacks,
			AggregatorRanks:    pt.TreeRanks,
			AppSeconds:         pt.AppSeconds,
			AnalyzedEvents:     pt.AnalyzedEvents,
			RootIngestBytes:    pt.RootIngestBytes,
			RootPosts:          pt.RootPosts,
			RootIngestRate:     pt.RootIngestRate,
			IngestReductionPct: pt.IngestReductionPct,
			ReducerMerges:      pt.ReducerMerges,
			MatchesFlat:        pt.MatchesFlat,
		})
	}
	return out
}

// TestRecordTreeBench is PR5's acceptance gate and bench recorder. Two
// concurrent applications are profiled with every analysis module on,
// flat and through reduction trees at equal event volume. It always
// asserts the headline bounds — every tree topology's profile is
// byte-identical to the flat run (the masked-report fingerprint), and on
// the default wire format both the 2-level and the 3-level tree at
// fan-in 8 cut root-blackboard ingest bytes/sec by at least 50 % — plus
// the degraded-mode bound: an interior aggregator killed mid-run still
// yields a full report with bounded, visible loss. With RECORD_BENCH set
// it additionally writes results/BENCH_PR5.json; without it, short mode
// skips.
//
// The v2 sweep is recorded without a reduction bound: v2 packs are ~25x
// smaller per event, while wait-state analysis must ship its pending
// send/recv queues event-granular until both sides of a channel meet at
// a common ancestor. With one aggregation tier covering all leaves
// (tree-L3) the pendings settle below the root and the tree still wins;
// with the root as the only meeting point (tree-L2) partial traffic can
// exceed the tiny v2 packs. The recorded numbers document exactly that
// trade.
func TestRecordTreeBench(t *testing.T) {
	record := os.Getenv("RECORD_BENCH") != ""
	if !record && testing.Short() {
		t.Skip("short mode and RECORD_BENCH unset")
	}
	lu, err := nas.LU(nas.ClassC, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := nas.CG(nas.ClassC, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	workloads := []*nas.Workload{lu, cg}
	base := exp.ProfileOptions{
		Workers:          1,
		WaitState:        true,
		TemporalWindowNs: (10 * time.Millisecond).Nanoseconds(),
		Callsites:        true,
		Sizes:            true,
	}
	configs := []exp.TreeConfig{
		{Levels: 2, Fanin: 8, FlushPacks: 4},
		{Levels: 3, Fanin: 8, FlushPacks: 4},
		{Levels: 3, Fanin: 4, FlushPacks: 4},
	}
	rec := benchRecordPR5{
		Benchmark: "TestRecordTreeBench",
		Workload:  "LU.C@64 + CG.C@64 concurrently, 4 timesteps, all analysis modules",
		GoVersion: runtime.Version(),
	}

	p := exp.Tera100()
	v1, err := exp.TreeScalingSweep(p, workloads, base, configs)
	if err != nil {
		t.Fatal(err)
	}
	rec.SweepV1 = toTreePoints(v1)
	for _, pt := range v1[1:] {
		if !pt.MatchesFlat {
			t.Errorf("v1 %s: profile diverged from the flat run", pt.Config)
		}
		if pt.AnalyzedEvents != v1[0].AnalyzedEvents {
			t.Errorf("v1 %s: %d events != flat's %d", pt.Config, pt.AnalyzedEvents, v1[0].AnalyzedEvents)
		}
		// The enforced minimum is 50 %; measured reductions on this
		// workload are > 90 % (the margin absorbs codec and table tuning).
		if pt.Config.Fanin <= 8 && pt.IngestReductionPct < 50 {
			t.Errorf("v1 %s: root ingest reduction %.1f%%, want >= 50%%", pt.Config, pt.IngestReductionPct)
		}
	}

	v2opts := base
	v2opts.PackV2 = true
	v2, err := exp.TreeScalingSweep(p, workloads, v2opts, []exp.TreeConfig{
		{Levels: 2, Fanin: 8, FlushPacks: 16},
		{Levels: 3, Fanin: 8, FlushPacks: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec.SweepV2 = toTreePoints(v2)
	for _, pt := range v2[1:] {
		if !pt.MatchesFlat {
			t.Errorf("v2 %s: profile diverged from the flat run", pt.Config)
		}
	}
	// The tree with an interior tier settles wait-state pendings below the
	// root and must still beat even the compact v2 wire format.
	if pt := v2[2]; pt.IngestReductionPct < 50 {
		t.Errorf("v2 %s: root ingest reduction %.1f%%, want >= 50%%", pt.Config, pt.IngestReductionPct)
	}

	// Degraded mode: fail-stop an interior aggregator halfway through.
	fcfg := exp.TreeConfig{Levels: 3, Fanin: 2, FlushPacks: 1}
	fpt, err := exp.TreeFaultRun(p, workloads, base, fcfg, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rec.Fault = treeFaultPoint{
		Topology:        fcfg.String(),
		KilledLocal:     fpt.KilledLocal,
		KillAtMs:        float64(fpt.KillAt) / float64(time.Millisecond),
		CompletenessPct: fpt.CompletenessPct,
		Reparented:      fpt.Reparented,
		UpFailovers:     fpt.UpFailovers,
		UpQuarantines:   fpt.UpQuarantines,
		UpDropped:       fpt.UpDropped,
		ReportProduced:  fpt.ReportProduced,
	}
	if !fpt.ReportProduced {
		t.Error("aggregator kill: no report produced")
	}
	if fpt.CompletenessPct < 50 || fpt.CompletenessPct > 100 {
		t.Errorf("aggregator kill: completeness %.1f%% outside (50, 100]", fpt.CompletenessPct)
	}
	if fpt.UpQuarantines == 0 {
		t.Error("aggregator kill: the writers never quarantined the dead endpoint")
	}

	if !record {
		return
	}
	buf, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("results", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("results/BENCH_PR5.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote results/BENCH_PR5.json (%d v1 points, %d v2 points)", len(rec.SweepV1), len(rec.SweepV2))
}
