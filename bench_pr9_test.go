package repro

import (
	"encoding/json"
	"os"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/exp"
)

type benchRecordPR9 struct {
	Benchmark string `json:"benchmark"`
	Workload  string `json:"workload"`
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// Points is the v3 fused engine at each worker count: blackboard
	// workers, shards and replica lanes scale together; 1 worker is the
	// serial (replica-free) engine of PR7.
	Points []exp.RawSpeedPoint `json:"points"`
	// SpeedupX maps "<workers>" to events/s relative to the 1-worker run.
	SpeedupX map[string]float64 `json:"speedup_x"`
}

// TestRecordParallelAnalysisBench is PR9's acceptance gate and bench
// recorder: the v3 fused path analyzes the identical pre-encoded Fig14
// workload at 1, 2, 4 and 8 workers, with per-worker module replicas and
// epoch merges carrying the parallelism. The scaling requirement is
// gated on the host's core count — >= 2x at 8 workers on an 8-core box,
// >= 1.5x on a 4-core box (the CI runner class), log-only below, where
// there is no parallel hardware to scale onto. Byte-identity of the
// parallel path is pinned separately and at full strictness by
// TestReplicaProfileMatrixMatchesSerial and the analysis-level golden
// tests. With RECORD_BENCH set it additionally writes
// results/BENCH_PR9.json; without it, short mode skips.
func TestRecordParallelAnalysisBench(t *testing.T) {
	record := os.Getenv("RECORD_BENCH") != ""
	if !record && testing.Short() {
		t.Skip("short mode and RECORD_BENCH unset")
	}
	writers := 8
	events := 100000
	if record {
		events = 200000
	}
	cores := []int{1, 2, 4, 8}

	pts, err := exp.RawSpeedScaling(writers, events, cores)
	if err != nil {
		t.Fatal(err)
	}
	base := pts[0]
	speedup := map[string]float64{}
	var at8 float64
	for i, pt := range pts {
		x := pt.EventsPerSec / base.EventsPerSec
		speedup[strconv.Itoa(cores[i])] = x
		if cores[i] == 8 {
			at8 = x
		}
		t.Logf("workers=%d: %.0f ev/s (%.2fx, %d epoch merges)", cores[i], pt.EventsPerSec, x, pt.EpochMerges)
	}
	switch {
	case runtime.NumCPU() >= 8:
		if at8 < 2 {
			t.Errorf("8-worker replica path %.2fx over serial on a %d-core host, want >= 2x", at8, runtime.NumCPU())
		}
	case runtime.NumCPU() >= 4:
		if at8 < 1.5 {
			t.Errorf("8-worker replica path %.2fx over serial on a %d-core host, want >= 1.5x", at8, runtime.NumCPU())
		}
	default:
		t.Logf("host has %d cores: scaling gate skipped (%.2fx at 8 workers)", runtime.NumCPU(), at8)
	}
	for _, pt := range pts[1:] {
		if pt.EpochMerges == 0 {
			t.Errorf("workers=%d ran no epoch merges: the replica path did not engage", pt.Workers)
		}
	}

	if !record {
		return
	}
	rec := benchRecordPR9{
		Benchmark: "TestRecordParallelAnalysisBench",
		Workload:  "Fig14, 8 writers x 200k events, pre-encoded v3, fused + replicas",
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Points:    pts,
		SpeedupX:  speedup,
	}
	buf, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("results", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("results/BENCH_PR9.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote results/BENCH_PR9.json (%.2fx at 8 workers on %d cores)", at8, runtime.NumCPU())
}
