// Package repro's root benchmark harness: one benchmark per figure of the
// paper's evaluation. Each benchmark regenerates its figure's data series
// at a reduced default scale (so `go test -bench=.` completes in minutes)
// and reports the figure's headline quantities as custom benchmark
// metrics. The cmd/ tools run the same experiments at paper scale and
// print the full tables; EXPERIMENTS.md records paper-vs-measured for
// every figure.
package repro

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/exp"
	"repro/internal/nas"
	"repro/internal/report"
	"repro/internal/trace"
)

// BenchmarkFig14StreamThroughput regenerates Figure 14's series: global
// VMPI stream throughput for a grid of writer counts and writer/reader
// ratios, reporting GB/s per point (compare with the prorated filesystem
// share reported as fs-GB/s).
func BenchmarkFig14StreamThroughput(b *testing.B) {
	p := exp.Tera100()
	for _, writers := range []int{64, 256, 1024} {
		for _, ratio := range []int{1, 4, 16, 32} {
			if ratio > writers {
				continue
			}
			name := benchName("writers", writers, "ratio", ratio)
			b.Run(name, func(b *testing.B) {
				var last exp.StreamPoint
				for i := 0; i < b.N; i++ {
					pt, err := exp.StreamThroughput(p, writers, ratio, 16<<20, 1<<20)
					if err != nil {
						b.Fatal(err)
					}
					last = pt
				}
				b.ReportMetric(last.Throughput/1e9, "GB/s")
				b.ReportMetric(last.FSShare/1e9, "fs-GB/s")
			})
		}
	}
}

// BenchmarkFig15Overhead regenerates Figure 15's series: online-coupling
// overhead at a 1:1 ratio per benchmark and class, reporting the overhead
// percentage and the instrumentation bandwidth Bi.
func BenchmarkFig15Overhead(b *testing.B) {
	p := exp.Tera100()
	for _, c := range exp.Fig15Cases() {
		procs := nas.ValidProcs(c.Kind, 256)
		w, err := nas.ByName(c.Kind, c.Class, procs, 8)
		if err != nil {
			continue
		}
		b.Run(w.Name+"-"+itoa(procs), func(b *testing.B) {
			var last exp.OverheadPoint
			for i := 0; i < b.N; i++ {
				pt, err := exp.MeasureOverhead(p, w, exp.ToolOnline, 1)
				if err != nil {
					b.Fatal(err)
				}
				last = pt
			}
			b.ReportMetric(last.OverheadPct, "overhead-%")
			b.ReportMetric(last.Bi/1e6, "Bi-MB/s")
			if last.OverheadPct > 30 {
				b.Fatalf("overhead %f%% outside the paper's envelope", last.OverheadPct)
			}
		})
	}
}

// BenchmarkFig16ToolComparison regenerates Figure 16's series: SP.D under
// the five tool configurations, reporting overhead percent and data volume
// per tool. The shape criterion — at scale, the FS-bound trace tool costs
// more than the online coupling despite producing less data — is asserted.
func BenchmarkFig16ToolComparison(b *testing.B) {
	p := exp.Curie()
	// 2025 = 45² cores: large enough that the online tool's per-event cost
	// (≈1.2 %) and the trace tool's FS pressure dominate the deterministic
	// synchronization-phase noise (≈±0.5 %).
	const procs = 2025
	w, err := nas.SP(nas.ClassD, procs, 8)
	if err != nil {
		b.Fatal(err)
	}
	ref, err := exp.MeasureOverhead(p, w, exp.ToolReference, 1)
	if err != nil {
		b.Fatal(err)
	}
	results := map[exp.Tool]exp.OverheadPoint{}
	for _, tool := range exp.Tools() {
		tool := tool
		b.Run(tool.String(), func(b *testing.B) {
			var last exp.OverheadPoint
			for i := 0; i < b.N; i++ {
				pt, err := exp.MeasureOverheadWithRef(p, w, tool, 1, ref.RefSeconds)
				if err != nil {
					b.Fatal(err)
				}
				last = pt
			}
			results[tool] = last
			b.ReportMetric(last.OverheadPct, "overhead-%")
			b.ReportMetric(float64(last.DataBytes)/(1<<20), "data-MB")
		})
	}
	online, trc := results[exp.ToolOnline], results[exp.ToolScorePTrace]
	if online.Seconds > 0 && trc.Seconds > 0 {
		if online.DataBytes <= trc.DataBytes {
			b.Fatalf("online volume (%d) should exceed trace volume (%d)", online.DataBytes, trc.DataBytes)
		}
		if trc.OverheadPct <= online.OverheadPct {
			b.Fatalf("at %d procs the trace tool (%.2f%%) should cost more than online (%.2f%%)",
				procs, trc.OverheadPct, online.OverheadPct)
		}
	}
}

// BenchmarkFig17Topology regenerates Figure 17's topological outputs: the
// CG.D communication matrix on 128 cores (17a/17b) plus the SP and
// EulerMHD topology graphs, asserting their structural signatures.
func BenchmarkFig17Topology(b *testing.B) {
	p := exp.Tera100()
	cases := []struct {
		name string
		mk   func() (*nas.Workload, error)
		// verify checks the figure's structural signature.
		verify func(b *testing.B, mat *analysis.Matrix)
	}{
		{"CG.D-128", func() (*nas.Workload, error) { return nas.CG(nas.ClassD, 128, 3) },
			func(b *testing.B, mat *analysis.Matrix) {
				// Power-of-two ladder bands: distance 1, 2, 4, 8 edges in
				// the first process row (npcols = 16 for p = 128).
				for _, d := range []int{1, 2, 4, 8} {
					if h, _, _ := mat.At(0, d); h == 0 {
						b.Fatalf("CG matrix missing distance-%d band", d)
					}
				}
			}},
		{"SP.C-256", func() (*nas.Workload, error) { return nas.SP(nas.ClassC, 256, 3) },
			func(b *testing.B, mat *analysis.Matrix) {
				// Torus: every rank has exactly 4 neighbours.
				for r := 0; r < mat.N; r++ {
					if mat.Degree(r) != 4 {
						b.Fatalf("SP rank %d degree = %d, want 4", r, mat.Degree(r))
					}
				}
			}},
		{"EulerMHD-256", func() (*nas.Workload, error) { return nas.EulerMHD(256, 2) },
			func(b *testing.B, mat *analysis.Matrix) {
				// Non-periodic mesh: corners 2, interior 4.
				if mat.Degree(0) != 2 {
					b.Fatalf("EulerMHD corner degree = %d", mat.Degree(0))
				}
				if mat.Degree(mat.N/2+2) != 4 {
					b.Fatalf("EulerMHD interior degree = %d", mat.Degree(mat.N/2+2))
				}
			}},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			w, err := c.mk()
			if err != nil {
				b.Fatal(err)
			}
			var mat *analysis.Matrix
			var events int64
			for i := 0; i < b.N; i++ {
				rep, err := exp.ProfileRun(p, []*nas.Workload{w}, exp.ProfileOptions{})
				if err != nil {
					b.Fatal(err)
				}
				mat = rep.Chapters[0].Topology.Matrix()
				events = rep.Chapters[0].Profiler.Events()
			}
			c.verify(b, mat)
			b.ReportMetric(float64(events), "events")
			b.ReportMetric(float64(mat.TotalBytes())/(1<<20), "p2p-MB")
		})
	}
}

// BenchmarkFig18DensityMaps regenerates Figure 18's density maps: LU's
// send-hit and size maps (18a/18b) and BT's collective-time, wait-time and
// p2p-size maps (18c/18d/18e), asserting the paper's qualitative findings
// (neighbour-count correlation; symmetric wait imbalance with a ≈2×
// spread; sub-percent size imbalance).
func BenchmarkFig18DensityMaps(b *testing.B) {
	p := exp.Tera100()
	b.Run("LU.D-send-hits", func(b *testing.B) {
		w, err := nas.LU(nas.ClassD, 64, 3)
		if err != nil {
			b.Fatal(err)
		}
		var hits []float64
		for i := 0; i < b.N; i++ {
			rep, err := exp.ProfileRun(p, []*nas.Workload{w}, exp.ProfileOptions{})
			if err != nil {
				b.Fatal(err)
			}
			hits = rep.Chapters[0].Density.Map(trace.KindSend, analysis.MetricHits)
		}
		// 8x8 mesh: corner (2 neighbours) < edge (3) < interior (4).
		if !(hits[0] < hits[1] && hits[1] < hits[9]) {
			b.Fatalf("send hits don't follow neighbour count: %v %v %v", hits[0], hits[1], hits[9])
		}
		st := report.Stats(hits)
		b.ReportMetric(st.Imbalance, "imbalance")
	})
	b.Run("BT.D-wait-and-size", func(b *testing.B) {
		// 100 = 10² ranks: 408 % 10 != 0, so the remainder split yields
		// the paper's small p2p size imbalance (Figure 18e).
		w, err := nas.BT(nas.ClassD, 100, 3)
		if err != nil {
			b.Fatal(err)
		}
		var waits, sizes []float64
		for i := 0; i < b.N; i++ {
			rep, err := exp.ProfileRun(p, []*nas.Workload{w}, exp.ProfileOptions{})
			if err != nil {
				b.Fatal(err)
			}
			waits = rep.Chapters[0].Density.CollectiveTimeMap()
			sizes = rep.Chapters[0].Density.P2PSizeMap()
		}
		wst, sst := report.Stats(waits), report.Stats(sizes)
		// Collective-time spread clearly above flat (paper: red ≈1.7×
		// green) but bounded: max/mean between 1.2 and 5.
		if wst.Imbalance < 1.2 || wst.Imbalance > 5 {
			b.Fatalf("collective-time imbalance out of shape: %+v", wst)
		}
		// P2P size spread present but small (paper: ≈0.6 %; the remainder
		// split gives a few percent at this reduced grid).
		if sst.Max <= sst.Min {
			b.Fatalf("expected a small p2p size imbalance: %+v", sst)
		}
		if sst.Max/sst.Min > 1.35 {
			b.Fatalf("p2p size spread too large: %+v", sst)
		}
		b.ReportMetric(wst.Imbalance, "wait-imbalance")
		b.ReportMetric(sst.Max/sst.Min, "size-spread")
	})
}

func benchName(k1 string, v1 int, k2 string, v2 int) string {
	return k1 + "=" + itoa(v1) + "/" + k2 + "=" + itoa(v2)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkRatioTradeoff tests the paper's resource-dimensioning claim
// (§IV-B): overhead is flat for writer/reader ratios between 1 and ≈1/16
// and rises once the analysis partition's ingest capacity drops below the
// application's instrumentation bandwidth. The run is long enough (32
// timesteps) that steady-state pack flushes, not the synchronized finalize
// flush, dominate the stream traffic.
func BenchmarkRatioTradeoff(b *testing.B) {
	p := exp.Tera100()
	w, err := nas.SP(nas.ClassC, 1024, 32)
	if err != nil {
		b.Fatal(err)
	}
	ratios := []int{1, 4, 16, 64}
	var pts []exp.OverheadPoint
	for i := 0; i < b.N; i++ {
		pts, err = exp.RatioSweep(p, w, ratios)
		if err != nil {
			b.Fatal(err)
		}
	}
	byRatio := map[int]exp.OverheadPoint{}
	for _, pt := range pts {
		byRatio[pt.Ratio] = pt
		b.Logf("ratio 1:%-3d overhead %6.2f%%  Bi %8.1f MB/s", pt.Ratio, pt.OverheadPct, pt.Bi/1e6)
	}
	lo, mid, hi := byRatio[1], byRatio[16], byRatio[64]
	b.ReportMetric(lo.OverheadPct, "ovh-1:1-%")
	b.ReportMetric(mid.OverheadPct, "ovh-1:16-%")
	b.ReportMetric(hi.OverheadPct, "ovh-1:64-%")
	// The extreme ratio must cost clearly more than 1:1...
	if hi.OverheadPct < lo.OverheadPct+2 {
		b.Fatalf("starved analyzers (1:64 = %.2f%%) should exceed 1:1 (%.2f%%)",
			hi.OverheadPct, lo.OverheadPct)
	}
	// ...while the paper's recommended band stays within a few points of
	// 1:1 (our synchronized pack flushes burst harder than real tools'
	// staggered buffers, so the band is slightly wider than the paper's).
	if mid.OverheadPct > lo.OverheadPct+8 {
		b.Fatalf("1:16 (%.2f%%) should stay near 1:1 (%.2f%%)", mid.OverheadPct, lo.OverheadPct)
	}
	if hi.OverheadPct <= mid.OverheadPct {
		b.Fatalf("overhead should grow monotonically past the knee: 1:64 %.2f%% vs 1:16 %.2f%%",
			hi.OverheadPct, mid.OverheadPct)
	}
}
