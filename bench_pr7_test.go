package repro

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"repro/internal/exp"
	"repro/internal/trace"
)

type benchRecordPR7 struct {
	Benchmark string `json:"benchmark"`
	Workload  string `json:"workload"`
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// Baseline is the PR6 engine: v2 delta+varint packs posted on the
	// single-partition blackboard, decoded per pack by the unpacker KS
	// with one board entry per event.
	Baseline exp.RawSpeedPoint `json:"baseline_v2_flat"`
	// New is this PR's engine: v3 stream-dictionary packs folded through
	// the fused decode→dispatch path over the sharded board.
	New exp.RawSpeedPoint `json:"new_v3_sharded"`
	// Ablations attribute the speedup: v3 fused over the 1-shard board
	// (codec + fused path alone) and v2 over the sharded board (shards
	// alone).
	FusedOneShard exp.RawSpeedPoint `json:"ablation_v3_fused_one_shard"`
	V2Sharded     exp.RawSpeedPoint `json:"ablation_v2_sharded_board"`
	SpeedupX      float64           `json:"speedup_x"`
	// WireRatioV3toV2 compares total wire bytes of the same workload
	// under both codecs (< 1 means v3 is denser on this stream length).
	WireRatioV3toV2 float64 `json:"wire_ratio_v3_to_v2"`
}

// TestRecordRawSpeedBench is PR7's acceptance gate and bench recorder:
// the identical pre-encoded Fig14 workload is analyzed by the PR6 engine
// (v2 packs, flat blackboard, per-event board entries) and by this PR's
// engine (v3 stream-dictionary packs, sharded board, fused
// decode→dispatch), at host speed with no simulator in the loop. The
// gate requires >= 2x analyzed events per second; the recorded runs on CI
// hardware land far above it. With RECORD_BENCH set it additionally
// writes results/BENCH_PR7.json; without it, short mode skips.
//
// Correctness of the fast path is guarded elsewhere and at full
// strictness: TestTreeProfileMatchesFlat pins flat/tree × v1/v2/v3
// golden profile fingerprints byte-identical, and the trace/analysis
// alloc guards pin PackBuilderV3 and the fused decode at zero
// allocations per event.
func TestRecordRawSpeedBench(t *testing.T) {
	record := os.Getenv("RECORD_BENCH") != ""
	if !record && testing.Short() {
		t.Skip("short mode and RECORD_BENCH unset")
	}
	writers := 8
	events := 100000
	if record {
		events = 200000
	}
	shards := runtime.NumCPU()
	if shards > 8 {
		shards = 8
	}

	run := func(version, shards int, fused bool) exp.RawSpeedPoint {
		t.Helper()
		pt, err := exp.RawAnalysisSpeed(exp.RawSpeedConfig{
			Writers: writers, EventsPerWriter: events,
			PackVersion: version, Shards: shards, Fused: fused,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pt
	}
	baseline := run(trace.PackV2, 1, false)
	nu := run(trace.PackV3, shards, true)

	speedup := nu.EventsPerSec / baseline.EventsPerSec
	if speedup < 2 {
		t.Errorf("v3+sharded engine %.0f ev/s vs v2+flat %.0f ev/s: %.2fx, want >= 2x",
			nu.EventsPerSec, baseline.EventsPerSec, speedup)
	}
	if nu.WireBytes >= baseline.WireBytes {
		t.Errorf("v3 wire %d >= v2 wire %d on a long stream: the dictionary is not paying",
			nu.WireBytes, baseline.WireBytes)
	}
	if nu.FusedPacks == 0 {
		t.Error("no packs took the fused path")
	}

	if !record {
		return
	}
	rec := benchRecordPR7{
		Benchmark:       "TestRecordRawSpeedBench",
		Workload:        "Fig14, 8 writers x 200k events, pre-encoded",
		GoVersion:       runtime.Version(),
		NumCPU:          runtime.NumCPU(),
		Baseline:        baseline,
		New:             nu,
		FusedOneShard:   run(trace.PackV3, 1, true),
		V2Sharded:       run(trace.PackV2, shards, false),
		SpeedupX:        speedup,
		WireRatioV3toV2: float64(nu.WireBytes) / float64(baseline.WireBytes),
	}
	buf, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("results", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("results/BENCH_PR7.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote results/BENCH_PR7.json (%.2fx: %.0f -> %.0f ev/s)",
		speedup, baseline.EventsPerSec, nu.EventsPerSec)
}
