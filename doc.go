// Package repro is a Go reproduction of "Event Streaming for Online
// Performance Measurements Reduction" (Besnard, Pérache, Jalby; ICPP
// 2013): online coupling of MPI instrumentation to a parallel blackboard
// analysis engine through VMPI partitions, mappings and streams.
//
// The root package holds the figure benchmarks (bench_test.go, one per
// figure of the paper's evaluation) and the ablation studies
// (ablation_test.go). The implementation lives under internal/ — see
// README.md for the architecture, DESIGN.md for the system inventory and
// substitutions, and EXPERIMENTS.md for paper-vs-measured results.
package repro
