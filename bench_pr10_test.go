package repro

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/nas"
	"repro/internal/report"
	"repro/internal/trace"
)

type benchRecordPR10 struct {
	Benchmark string `json:"benchmark"`
	Workload  string `json:"workload"`
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// Sweep is the virtual-clock latency model: per-phase push rate vs
	// event-to-report-update lag, with the catch-up SLO verdict.
	Sweep *exp.WindowLagResult `json:"sweep"`
	// WindowIdentity maps each profiled configuration to its per-window
	// series fingerprint; all values must be equal.
	WindowIdentity map[string]string `json:"window_identity"`
}

// windowSeriesFingerprint hashes every chapter's per-window canonical
// partial encodings, in (chapter, window index) order. It must run
// BEFORE the report is rendered: rendering reads wait-state totals,
// which settles the lazily-paired queues and legitimately changes the
// canonical bytes of later snapshots.
func windowSeriesFingerprint(t *testing.T, rep *report.Report) string {
	t.Helper()
	h := sha256.New()
	var buf []byte
	windows := 0
	for _, ch := range rep.Chapters {
		if ch.Windows == nil {
			t.Fatal("chapter has no windowed series")
		}
		for _, idx := range ch.Windows.Indices() {
			var ib [8]byte
			for i := 0; i < 8; i++ {
				ib[i] = byte(uint64(idx) >> (8 * i))
			}
			h.Write(ib[:])
			buf = ch.Windows.WindowPartial(idx).AppendCanonical(buf[:0])
			h.Write(buf)
			windows++
		}
	}
	if windows < 2 {
		t.Fatalf("only %d populated windows: geometry too coarse for an identity check", windows)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestRecordWindowedBench is PR10's acceptance gate and bench recorder.
// Two assertions:
//
// First, the latency SLO story: the deterministic burst model's lag must
// stay flat through the steady phase, rise during the 4x-overload burst,
// and drain back under the SLO once the push rate relaxes — the
// event-to-report-update latency behavior the windowed analysis is for.
//
// Second, per-window byte-identity: the same two applications profiled
// flat, through a two-tier reduction tree, and with 4-way replica
// parallelism must produce the byte-identical per-window series — the
// transport topology and the parallelism may change how each window's
// profile is computed, never its content.
//
// With RECORD_BENCH set it additionally writes results/BENCH_PR10.json;
// without it, short mode skips.
func TestRecordWindowedBench(t *testing.T) {
	record := os.Getenv("RECORD_BENCH") != ""
	if !record && testing.Short() {
		t.Skip("short mode and RECORD_BENCH unset")
	}

	// --- burst / catch-up SLO sweep ---
	cfg := exp.DefaultWindowLagConfig()
	res, err := exp.WindowLagSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var steady, burst, recover exp.WindowLagPoint
	for _, pt := range res.Points {
		switch pt.Phase {
		case "steady":
			steady = pt
		case "burst":
			burst = pt
		case "recover":
			recover = pt
		}
		t.Logf("%-8s gap=%-6v end lag=%-10v peak lag=%-10v late=%d",
			pt.Phase, time.Duration(pt.GapNs), time.Duration(pt.EndLagNs),
			time.Duration(pt.PeakLagNs), pt.LateEvents)
	}
	if steady.PeakLagNs > cfg.SLONs {
		t.Errorf("steady-phase peak lag %v exceeds the SLO %v: the analyzer cannot keep up unloaded",
			time.Duration(steady.PeakLagNs), time.Duration(cfg.SLONs))
	}
	if burst.PeakLagNs <= steady.PeakLagNs || burst.PeakLagNs <= cfg.SLONs {
		t.Errorf("burst peak lag %v did not rise above steady %v and the SLO %v: the burst is not a burst",
			time.Duration(burst.PeakLagNs), time.Duration(steady.PeakLagNs), time.Duration(cfg.SLONs))
	}
	if !res.SLOMet {
		t.Errorf("final lag %v exceeds the SLO %v: the analyzer never caught back up",
			time.Duration(res.FinalLagNs), time.Duration(res.SLONs))
	}
	if recover.EndLagNs > cfg.SLONs {
		t.Errorf("recovery-phase end lag %v exceeds the SLO %v", time.Duration(recover.EndLagNs), time.Duration(cfg.SLONs))
	}
	if res.Windows < 2 {
		t.Errorf("sweep produced %d windows, want several", res.Windows)
	}
	t.Logf("%d windows, max lag %v, final lag %v, %d late events, completeness >= %.2f%%",
		res.Windows, time.Duration(res.MaxLagNs), time.Duration(res.FinalLagNs),
		res.LateEvents, 100*res.MinCompleteness)

	// --- per-window byte-identity across transport/parallelism ---
	p := exp.Tera100()
	lu, err := nas.LU(nas.ClassC, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := nas.CG(nas.ClassC, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	ws := []*nas.Workload{lu, cg}
	base := exp.ProfileOptions{
		Analyzers:        4,
		Workers:          1,
		PackBytes:        1 << 14,
		WaitState:        true,
		TemporalWindowNs: 1e7,
		Callsites:        true,
		Sizes:            true,
		PackVersion:      trace.PackV3,
		WindowNs:         (10 * time.Millisecond).Nanoseconds(),
	}
	configs := []struct {
		name string
		mut  func(*exp.ProfileOptions)
	}{
		{"flat", func(o *exp.ProfileOptions) {}},
		{"tree-L2", func(o *exp.ProfileOptions) {
			o.TreeLevels = 2
			o.TreeFanin = 2
			o.TreeFlushPacks = 4
		}},
		{"replicas-4", func(o *exp.ProfileOptions) {
			o.Replicas = 4
			o.Workers = 4
			o.Shards = 4
		}},
	}
	identity := map[string]string{}
	var golden string
	for _, c := range configs {
		opts := base
		c.mut(&opts)
		rep, _, err := exp.ProfileRunStats(p, ws, opts)
		if err != nil {
			t.Fatal(err)
		}
		fp := windowSeriesFingerprint(t, rep)
		identity[c.name] = fp
		t.Logf("%-10s window-series fingerprint %s", c.name, fp[:16])
		if golden == "" {
			golden = fp
		} else if fp != golden {
			t.Errorf("%s per-window series fingerprint %s != flat %s: topology/parallelism changed window content",
				c.name, fp[:12], golden[:12])
		}
	}

	if !record {
		return
	}
	rec := benchRecordPR10{
		Benchmark:      "TestRecordWindowedBench",
		Workload:       "virtual-clock burst model (steady/burst/recover) + LU.C@16,CG.C@16 windowed at 10ms",
		GoVersion:      runtime.Version(),
		NumCPU:         runtime.NumCPU(),
		Sweep:          res,
		WindowIdentity: identity,
	}
	buf, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("results", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("results/BENCH_PR10.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote results/BENCH_PR10.json (max lag %v, SLO met: %v)", time.Duration(res.MaxLagNs), res.SLOMet)
}
